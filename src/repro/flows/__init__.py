"""The four flow-of-control mechanisms compared in the paper (Section 2).

Each mechanism creates *real resources* in the simulated machine (address
spaces for processes, stacks for threads, objects for events), is subject to
the platform's OS limit model (Table 2), and charges a mechanistic
context-switch cost to the processor clock (Figures 4–8):

* kernel mechanisms pay syscall entry/exit plus a run-queue term and, for
  processes, an address-space switch (TLB flush);
* all mechanisms pay a saturating cache-pollution penalty as the set of
  live flows outgrows the cache;
* on platforms whose kernel ignores repeated ``sched_yield`` (IBM SP and
  Alpha in the paper's Figures 7–8), the measured process/kthread switch is
  the artificially low no-op cost, exactly as the paper observed.
"""

from repro.flows.base import FlowHandle, FlowMechanism, YieldBenchmarkResult
from repro.flows.runtime import (FlowMessage, FlowProgram, FlowWorld,
                                 WorkloadRun)
from repro.flows.compile import CompiledFlow, FlowCompileError, compile_flow
from repro.flows.process import ProcessFlow
from repro.flows.kthread import KernelThreadFlow
from repro.flows.uthread import AmpiThreadFlow, UserThreadFlow
from repro.flows.events import EventObjectFlow
from repro.flows.hybrid import HybridThreadFlow
from repro.flows.compiled import CompiledContinuationFlow
from repro.flows.limits import LimitProbe, probe_limit

__all__ = [
    "FlowHandle",
    "FlowMechanism",
    "YieldBenchmarkResult",
    "FlowMessage",
    "FlowProgram",
    "FlowWorld",
    "WorkloadRun",
    "CompiledFlow",
    "FlowCompileError",
    "compile_flow",
    "ProcessFlow",
    "KernelThreadFlow",
    "UserThreadFlow",
    "AmpiThreadFlow",
    "EventObjectFlow",
    "HybridThreadFlow",
    "CompiledContinuationFlow",
    "LimitProbe",
    "probe_limit",
    "MECHANISMS",
    "WORKLOAD_MECHANISMS",
]

#: The four mechanisms benchmarked in Figures 4-8, in the paper's order.
MECHANISMS = {
    "process": ProcessFlow,
    "pthread": KernelThreadFlow,
    "cth": UserThreadFlow,
    "ampi": AmpiThreadFlow,
}

#: Mechanisms implementing the workload-execution contract's three
#: frontends (plus the N:M hybrid), keyed by label: the set the
#: thread-vs-event-vs-compiled comparisons run over.
WORKLOAD_MECHANISMS = {
    "cth": UserThreadFlow,
    "event": EventObjectFlow,
    "n:m": HybridThreadFlow,
    "compiled": CompiledContinuationFlow,
}
