"""Canonical :class:`~repro.flows.runtime.FlowProgram` factories.

Each factory closes its thread body over a precomputed, seeded plan —
never over live RNG state — so a generator run and its compiled
translation (whose closure cells are snapshot at compile time) observe
literally the same data, and so any two runs with the same seed are
bitwise repeatable.  These bodies live under ``src/repro/flows`` and are
therefore scanned by ``repro.analysis flowreport``: they are part of the
checked-in COMPILABLE contract in ``results/flow_report.json``.
"""

from __future__ import annotations

import random

from repro.flows.runtime import FlowProgram

__all__ = ["spin_program", "ring_program", "pingpong_program"]


def spin_program(ranks: int, rounds: int) -> FlowProgram:
    """Pure context-switch load: every rank yields ``rounds`` times.

    The workload behind the Figures 4–8 microbenchmark and the
    compiled-switch bench cell — no messages, so every kernel event is
    one switch.
    """

    def main(mpi):
        for _ in range(rounds):
            yield "yield"
        mpi.results[mpi.rank] = rounds
        yield "exit"

    return FlowProgram("spin", ranks, main)


def ring_program(ranks: int, rounds: int, seed: int = 0) -> FlowProgram:
    """Seeded ring rotation: send right, receive left, barrier per lap.

    Exercises every continuation primitive (recv, barrier, yield) plus
    a suspending loop, which makes it the differential oracle's main
    workload.
    """
    rng = random.Random(seed)
    payloads = [[rng.randrange(1000) for _ in range(rounds)]
                for _ in range(ranks)]

    def main(mpi):
        right = (mpi.rank + 1) % mpi.nranks
        left = (mpi.rank - 1) % mpi.nranks
        row = payloads[mpi.rank]
        acc = 0
        for i in range(len(row)):
            mpi.send(right, row[i], tag="ring")
            got = yield from mpi.recv(source=left, tag="ring")
            acc += got
            yield "yield"
        yield from mpi.barrier()
        mpi.results[mpi.rank] = acc

    return FlowProgram("ring", ranks, main)


def pingpong_program(ranks: int, rounds: int, seed: int = 0) -> FlowProgram:
    """Seeded pairwise ping-pong; an unpaired last rank spins.

    The even rank of each pair initiates, the odd rank echoes with a
    seeded increment — asymmetric control flow through the same body,
    so conditional suspend paths get differential coverage too.
    """
    rng = random.Random(seed)
    bumps = [rng.randrange(1, 10) for _ in range(ranks)]

    def main(mpi):
        peer = mpi.rank ^ 1
        acc = 0
        for i in range(rounds):
            if peer >= mpi.nranks:
                yield "yield"
            else:
                if mpi.rank < peer:
                    mpi.send(peer, bumps[mpi.rank] + i, tag="pp")
                    reply = yield from mpi.recv(source=peer, tag="pp")
                    acc += reply
                else:
                    ball = yield from mpi.recv(source=peer, tag="pp")
                    mpi.send(peer, ball + bumps[mpi.rank], tag="pp")
                    acc += ball
        mpi.results[mpi.rank] = acc

    return FlowProgram("pingpong", ranks, main)
