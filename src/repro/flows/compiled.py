"""Compiled continuations as flows of control.

The mechanism the 2006 paper *couldn't* benchmark: thread-style source,
event-style execution.  Bodies are written as generators (Section 2.3's
natural style) and mechanically translated by
:mod:`repro.flows.compile` into flat state machines dispatched on the
fast-path kernel, so a "flow" costs one small frame record — no stack,
no kernel object — and a switch is one scheduler dispatch plus the
trampoline's frame indirection.  That is what pushes the Table 2 column
to 10⁶ flows per PE.
"""

from __future__ import annotations

from typing import Optional

from repro.flows.base import FlowHandle, FlowMechanism
from repro.flows.compile import compile_flow
from repro.flows.runtime import FlowProgram, FlowWorld
from repro.sim.processor import Processor

__all__ = ["CompiledContinuationFlow"]


class CompiledContinuationFlow(FlowMechanism):
    """Thread bodies compiled to continuation state machines."""

    label = "compiled"
    #: A switch re-touches one frame record, barely more than an event
    #: object's application data.
    cache_weight = 0.35
    #: Modeled per-flow footprint: the ``__slots__`` frame record plus
    #: the parked (state fn, frame) continuation pair.
    frame_bytes = 512
    #: Trampoline + frame indirection on top of a raw event dispatch.
    continuation_ns = 20.0

    def __init__(self, processor: Processor):
        super().__init__(processor)

    def _create(self, index: int) -> FlowHandle:
        # A compiled flow is pure user data, like an event object: no
        # stack mapping, no kernel resource.  Creation is one dispatch
        # to run the entry state up to its first suspend.
        self.processor.charge(self.profile.event_dispatch_ns
                              + self.continuation_ns)
        # No payload object at all: a million handles stay a million
        # small records, which is the mechanism's whole argument.
        return FlowHandle(index)

    def _destroy(self, handle: FlowHandle) -> None:
        handle.payload = None

    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """One kernel dispatch into a state function via the trampoline."""
        n = n_flows if n_flows is not None else self.n_flows
        return (self.profile.event_dispatch_ns + self.continuation_ns
                + self.cache_penalty_ns(n))

    def _spawn(self, world: FlowWorld, program: FlowProgram) -> None:
        world.spawn_compiled(compile_flow(program.body))
