"""The paper's stencil workload, in all three flow-of-control forms.

One 1-D Jacobi relaxation, written three ways:

* **thread form** — the blocking-receive generator body inside
  :func:`stencil_program` ("the program's natural control flow",
  Section 2.3);
* **compiled form** — not written at all: :mod:`repro.flows.compile`
  derives it from the thread form, and the differential oracle pins
  its kernel trace byte-identical to the generator's;
* **event-object form** — :class:`StencilChare`, the hand-inverted
  SDAG-style state machine (Section 2.4's "awkward" shape: explicit
  step counters, explicit buffering of early messages, control flow
  scattered across ``on_message``).

All three share :func:`relax`, so their numeric results are
float-exact comparable.  Ghost messages are tagged ``(dir, step)``;
the step in the tag is what lets neighbors run asynchronously without
a barrier while still matching deterministically.
"""

from __future__ import annotations

import random
from typing import List

from repro.flows.runtime import FlowProgram, FlowWorld

__all__ = ["relax", "stencil_program", "StencilChare"]


def relax(data: List[float], below: float, above: float) -> List[float]:
    """One Jacobi sweep over a rank's cells with ghost values."""
    out = []
    for i in range(len(data)):
        left = below if i == 0 else data[i - 1]
        right = above if i == len(data) - 1 else data[i + 1]
        out.append((left + data[i] + right) / 3.0)
    return out


#: Modeled compute cost per cell per sweep (charged, not traced).
_NS_PER_CELL = 50.0


def stencil_program(ranks: int, cells: int = 8, steps: int = 4,
                    seed: int = 1) -> FlowProgram:
    """Build the three-forms stencil over a seeded initial field."""
    rng = random.Random(seed)
    init = [[rng.uniform(0.0, 100.0) for _ in range(cells)]
            for _ in range(ranks)]

    def main(mpi):
        data = list(init[mpi.rank])
        for step in range(steps):
            if mpi.rank > 0:
                mpi.send(mpi.rank - 1, data[0], tag=("up", step))
            if mpi.rank < mpi.nranks - 1:
                mpi.send(mpi.rank + 1, data[len(data) - 1],
                         tag=("down", step))
            if mpi.rank < mpi.nranks - 1:
                above = yield from mpi.recv(source=mpi.rank + 1,
                                            tag=("up", step))
            else:
                above = data[len(data) - 1]
            if mpi.rank > 0:
                below = yield from mpi.recv(source=mpi.rank - 1,
                                            tag=("down", step))
            else:
                below = data[0]
            mpi.charge(_NS_PER_CELL * len(data))
            data = relax(data, below, above)
        mpi.results[mpi.rank] = data

    def make_chare(world: FlowWorld, rank: int) -> "StencilChare":
        return StencilChare(world, rank, list(init[rank]), steps)

    return FlowProgram("stencil", ranks, main, event_objects=make_chare)


class StencilChare:
    """Hand-written event-object form of the same stencil.

    Everything the generator expresses with straight-line code becomes
    explicit object state: which step we are on, which ghosts have
    arrived, and a buffer for messages from neighbors that are already
    a step ahead.  This is the inversion the compiler performs
    mechanically.
    """

    def __init__(self, world: FlowWorld, rank: int,
                 data: List[float], steps: int) -> None:
        self.world = world
        self.rank = rank
        self.nranks = world.ranks
        self.data = data
        self.steps = steps
        self.step = 0
        self._ghosts: dict = {}      # tag -> value, may hold future steps
        self._finished = False

    # -- entry methods ---------------------------------------------------

    def start(self) -> None:
        if self.steps == 0:
            self._finish()
            return
        self._send_ghosts()
        self._try_advance()

    def on_message(self, msg) -> None:
        self._ghosts[msg.tag] = msg.data
        self._try_advance()

    # -- the inverted control flow ---------------------------------------

    def _send_ghosts(self) -> None:
        if self.rank > 0:
            self.world.send(self.rank, self.rank - 1, self.data[0],
                            tag=("up", self.step))
        if self.rank < self.nranks - 1:
            self.world.send(self.rank, self.rank + 1, self.data[-1],
                            tag=("down", self.step))

    def _try_advance(self) -> None:
        # Loop: several steps may unblock at once when buffered ghosts
        # from a fast neighbor are already waiting.
        while self.step < self.steps:
            need_above = self.rank < self.nranks - 1
            need_below = self.rank > 0
            up = ("up", self.step)
            down = ("down", self.step)
            if need_above and up not in self._ghosts:
                return
            if need_below and down not in self._ghosts:
                return
            above = self._ghosts.pop(up) if need_above else self.data[-1]
            below = self._ghosts.pop(down) if need_below else self.data[0]
            self.world.charge(_NS_PER_CELL * len(self.data))
            self.data = relax(self.data, below, above)
            self.step += 1
            if self.step < self.steps:
                self._send_ghosts()
        self._finish()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.world.results[self.rank] = self.data
        self.world.finish(self.rank)
