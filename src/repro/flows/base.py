"""Common interface and measurement harness for flow-of-control mechanisms."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError
from repro.sim.processor import Processor

__all__ = ["FlowHandle", "FlowMechanism", "YieldBenchmarkResult"]


@dataclass
class FlowHandle:
    """One created flow of control (opaque per-mechanism payload)."""

    index: int
    payload: object = None


@dataclass(frozen=True)
class YieldBenchmarkResult:
    """Outcome of the Figures 4–8 yield-loop microbenchmark."""

    mechanism: str
    platform: str
    n_flows: int
    rounds: int
    total_ns: float
    #: Time per flow per context switch — the figures' y axis.
    ns_per_switch: float


class FlowMechanism(ABC):
    """A way to run many flows of control on one simulated processor.

    Subclasses implement creation (acquiring the mechanism's real resources
    and hitting its real limits) and the mechanistic switch-cost model.
    """

    #: Mechanism label used in figures ("process", "pthread", "cth", "ampi").
    label: str = "?"
    #: Relative cache working set touched per switch (drives the saturating
    #: cache-penalty term; processes re-touch the most state).
    cache_weight: float = 1.0

    def __init__(self, processor: Processor):
        self.processor = processor
        self.profile = processor.profile
        self.flows: List[FlowHandle] = []

    # -- creation ---------------------------------------------------------

    @abstractmethod
    def _create(self, index: int) -> FlowHandle:
        """Mechanism-specific creation; may raise an OS-limit error."""

    @abstractmethod
    def _destroy(self, handle: FlowHandle) -> None:
        """Mechanism-specific teardown."""

    def create_flow(self) -> FlowHandle:
        """Create one more flow, charging its creation cost."""
        handle = self._create(len(self.flows))
        self.flows.append(handle)
        return handle

    def destroy_all(self) -> None:
        """Tear down every flow this mechanism created."""
        while self.flows:
            self._destroy(self.flows.pop())

    @property
    def n_flows(self) -> int:
        """Number of currently live flows."""
        return len(self.flows)

    # -- switch-cost model ---------------------------------------------------

    @abstractmethod
    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """Modeled cost of one context switch with ``n_flows`` flows live."""

    def cache_penalty_ns(self, n_flows: int) -> float:
        """Saturating cache-pollution term shared by every mechanism.

        With few flows, each switch finds its state warm in cache; as the
        set of live flows outgrows the cache, every switch pays reload
        misses.  ``penalty -> cache_penalty_ns * cache_weight`` as
        ``n_flows -> inf``, half-saturating at ``cache_flows_scale`` flows.
        This is what makes the user-level thread curves "increase slowly as
        the number of flows increases" (Section 4.1).
        """
        p = self.profile
        return (p.cache_penalty_ns * self.cache_weight
                * n_flows / (n_flows + p.cache_flows_scale))

    # -- the experiment ---------------------------------------------------------

    def run_yield_benchmark(self, n_flows: int, rounds: int = 3,
                            keep: bool = False) -> YieldBenchmarkResult:
        """The paper's microbenchmark: n flows each yield ``rounds`` times.

        Creates the flows for real (so limit and memory failures surface),
        then charges ``n_flows * rounds`` modeled switches to the processor
        clock and reports time per flow per switch.
        """
        if n_flows <= 0:
            raise ReproError("benchmark needs at least one flow")
        while self.n_flows < n_flows:
            self.create_flow()
        start = self.processor.now
        per_switch = self.switch_cost_ns(n_flows)
        switches = n_flows * rounds
        self.processor.charge(per_switch * switches)
        total = self.processor.now - start
        if not keep:
            self.destroy_all()
        return YieldBenchmarkResult(
            mechanism=self.label,
            platform=self.profile.name,
            n_flows=n_flows,
            rounds=rounds,
            total_ns=total,
            ns_per_switch=total / switches,
        )
