"""Common interface and measurement harness for flow-of-control mechanisms.

A mechanism is both a *cost model* (creation cost, switch cost, OS
limits — Figures 4–8 and Table 2) and an *executor*: every mechanism
runs real message-passing workloads through the shared
:class:`~repro.flows.runtime.FlowWorld` substrate via
:meth:`FlowMechanism.run_workload`, so thread, event-object, hybrid and
compiled-continuation flows are interchangeable behind one contract:

``create`` (real resources, real limits) / ``run_workload`` (execute a
:class:`~repro.flows.runtime.FlowProgram`) / ``switch_cost_ns`` (the
mechanistic model) / ``probe_limit`` (Table 2 probe).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError
from repro.flows.runtime import FlowProgram, FlowWorld, WorkloadRun
from repro.kernel import EventKernel, KernelTracer
from repro.sim.processor import Processor

__all__ = ["FlowHandle", "FlowMechanism", "YieldBenchmarkResult"]


@dataclass
class FlowHandle:
    """One created flow of control (opaque per-mechanism payload)."""

    index: int
    payload: object = None


@dataclass(frozen=True)
class YieldBenchmarkResult:
    """Outcome of the Figures 4–8 yield-loop microbenchmark."""

    mechanism: str
    platform: str
    n_flows: int
    rounds: int
    total_ns: float
    #: Time per flow per context switch — the figures' y axis.
    ns_per_switch: float


class FlowMechanism(ABC):
    """A way to run many flows of control on one simulated processor.

    Subclasses implement creation (acquiring the mechanism's real resources
    and hitting its real limits) and the mechanistic switch-cost model.
    """

    #: Mechanism label used in figures ("process", "pthread", "cth", "ampi").
    label: str = "?"
    #: Relative cache working set touched per switch (drives the saturating
    #: cache-penalty term; processes re-touch the most state).
    cache_weight: float = 1.0

    def __init__(self, processor: Processor):
        self.processor = processor
        self.profile = processor.profile
        self.flows: List[FlowHandle] = []

    # -- creation ---------------------------------------------------------

    @abstractmethod
    def _create(self, index: int) -> FlowHandle:
        """Mechanism-specific creation; may raise an OS-limit error."""

    @abstractmethod
    def _destroy(self, handle: FlowHandle) -> None:
        """Mechanism-specific teardown."""

    def create_flow(self) -> FlowHandle:
        """Create one more flow, charging its creation cost."""
        handle = self._create(len(self.flows))
        self.flows.append(handle)
        return handle

    def destroy_all(self) -> None:
        """Tear down every flow this mechanism created."""
        while self.flows:
            self._destroy(self.flows.pop())

    @property
    def n_flows(self) -> int:
        """Number of currently live flows."""
        return len(self.flows)

    # -- switch-cost model ---------------------------------------------------

    @abstractmethod
    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """Modeled cost of one context switch with ``n_flows`` flows live."""

    def cache_penalty_ns(self, n_flows: int) -> float:
        """Saturating cache-pollution term shared by every mechanism.

        With few flows, each switch finds its state warm in cache; as the
        set of live flows outgrows the cache, every switch pays reload
        misses.  ``penalty -> cache_penalty_ns * cache_weight`` as
        ``n_flows -> inf``, half-saturating at ``cache_flows_scale`` flows.
        This is what makes the user-level thread curves "increase slowly as
        the number of flows increases" (Section 4.1).
        """
        p = self.profile
        return (p.cache_penalty_ns * self.cache_weight
                * n_flows / (n_flows + p.cache_flows_scale))

    # -- workload execution -----------------------------------------------

    def _spawn(self, world: FlowWorld, program: FlowProgram) -> None:
        """Populate ``world`` with this mechanism's form of ``program``.

        The default is the thread form (the generator body); event and
        compiled mechanisms override this with their own front end.
        """
        world.spawn_threads(program.body)

    def run_workload(self, program: FlowProgram, *, trace: bool = False,
                     max_events: Optional[int] = None,
                     real_flows: bool = True,
                     keep: bool = False) -> WorkloadRun:
        """Execute ``program`` under this mechanism.

        ``real_flows`` creates one real flow per rank first (stacks,
        kernel objects...), so OS-limit and memory failures surface
        exactly as in :func:`repro.flows.limits.probe_limit`; the
        modeled switch cost at that population is charged per dispatch.
        ``trace=True`` attaches a :class:`KernelTracer` and returns its
        entries on the run (the differential oracle's byte source).
        """
        if real_flows:
            while self.n_flows < program.ranks:
                self.create_flow()
        kernel = EventKernel(name="flows", causality=False)
        tracer = KernelTracer().attach(kernel) if trace else None
        world = FlowWorld(program.ranks,
                          dispatch_cost_ns=self.switch_cost_ns(
                              program.ranks),
                          kernel=kernel)
        self._spawn(world, program)
        processed = world.run(max_events)
        if not keep:
            self.destroy_all()
        program.results.update(world.results)
        return WorkloadRun(
            mechanism=self.label,
            platform=self.profile.name,
            program=program.name,
            ranks=program.ranks,
            dispatches=world.dispatches,
            kernel_events=processed,
            work_ns=world.work_ns,
            modeled_switch_ns=world.modeled_switch_ns,
            results=dict(world.results),
            trace=tracer.entries if tracer is not None else None,
        )

    def probe_limit(self, cap: int, chunk: int = 1):
        """Table 2 probe: create until refusal or ``cap`` (then clean up)."""
        from repro.flows.limits import probe_limit as _probe
        return _probe(self, cap, chunk=chunk)

    # -- the experiment ---------------------------------------------------------

    def run_yield_benchmark(self, n_flows: int, rounds: int = 3,
                            keep: bool = False) -> YieldBenchmarkResult:
        """The paper's microbenchmark: n flows each yield ``rounds`` times.

        Creates the flows for real (so limit and memory failures surface),
        then charges ``n_flows * rounds`` modeled switches to the processor
        clock and reports time per flow per switch.
        """
        if n_flows <= 0:
            raise ReproError("benchmark needs at least one flow")
        while self.n_flows < n_flows:
            self.create_flow()
        start = self.processor.now
        per_switch = self.switch_cost_ns(n_flows)
        switches = n_flows * rounds
        self.processor.charge(per_switch * switches)
        total = self.processor.now - start
        if not keep:
            self.destroy_all()
        return YieldBenchmarkResult(
            mechanism=self.label,
            platform=self.profile.name,
            n_flows=n_flows,
            rounds=rounds,
            total_ns=total,
            ns_per_switch=total / switches,
        )
