"""N:M hybrid threading (paper Section 2.3's related-work model).

"Some systems such as AIX and Solaris support 'N:M' thread scheduling,
which maps some number N of application threads onto a (usually smaller)
number M of kernel entities.  There are two parties, the kernel and the
user parts of the thread system, involved in each thread operation for N:M
threading, which is complex."

The model here captures the observable consequences:

* creation is user-level cheap (N is unbounded by the kernel) but the M
  kernel entities still count against the pthread limit;
* a switch between two application threads on the *same* kernel entity is
  a user-level switch plus the two-party coordination overhead; with
  probability 1/M the next thread lives on a different kernel entity and
  the switch pays the kernel price too (expected-cost model);
* a blocking call takes down only one of the M kernel entities, unlike a
  pure user-level system (tested against the scheduler's io modes).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ThreadLimitExceeded
from repro.flows.base import FlowHandle, FlowMechanism
from repro.sim.processor import Processor

__all__ = ["HybridThreadFlow"]


class HybridThreadFlow(FlowMechanism):
    """N application threads multiplexed over M kernel threads."""

    label = "n:m"
    cache_weight = 1.05
    stack_bytes = 16 * 1024
    #: Two-party (user + kernel scheduler) bookkeeping per switch.
    coordination_ns = 150.0

    def __init__(self, processor: Processor, kernel_entities: int = 4):
        super().__init__(processor)
        if kernel_entities <= 0:
            raise ThreadLimitExceeded("N:M needs at least one kernel entity")
        self.m = kernel_entities
        # The M kernel entities are real pthreads against the kernel model.
        for _ in range(kernel_entities):
            processor.kernel.thread_create()
            processor.charge(self.profile.pthread_create_ns)

    def _create(self, index: int) -> FlowHandle:
        stack = self.processor.space.mmap(self.stack_bytes, region="iso",
                                          reserve_only=True,
                                          tag=f"nm-stack{index}")
        touched = self.processor.space.physical.allocate_frames(1)
        self.processor.charge(self.profile.uthread_create_ns
                              + self.coordination_ns)
        return FlowHandle(index, payload=(stack, touched))

    def _destroy(self, handle: FlowHandle) -> None:
        stack, touched = handle.payload
        self.processor.space.munmap(stack)
        self.processor.space.physical.free_frames(touched)

    def teardown(self) -> None:
        """Release the M kernel entities (after destroy_all)."""
        for _ in range(self.m):
            self.processor.kernel.thread_exit()
        self.m = 0

    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """Expected cost of one N:M switch.

        With M kernel entities and a balanced mapping, a fraction
        ``1/M`` of switches cross kernel entities and pay the kernel
        switch; the rest are user-level.  All pay the two-party
        coordination overhead.
        """
        n = n_flows if n_flows is not None else self.n_flows
        p = self.profile
        user = p.uthread_switch_ns + self.cache_penalty_ns(n)
        kernel = p.syscall_ns + p.kthread_switch_ns \
            + p.runqueue_ns_per_flow * min(n, self.m)
        cross = 1.0 / self.m
        return self.coordination_ns + (1 - cross) * user + cross * kernel
