"""Kernel threads (pthreads) as flows of control (paper Section 2.2)."""

from __future__ import annotations

from typing import Optional

from repro.flows.base import FlowHandle, FlowMechanism
from repro.sim.processor import Processor

__all__ = ["KernelThreadFlow"]


class KernelThreadFlow(FlowMechanism):
    """pthread_create()-created kernel threads yielding with sched_yield().

    Threads share the processor's address space but each needs a real
    stack mapping and a kernel descriptor; creation hits the platform's
    pthread limit (Table 2 — e.g. fewer than 256 on stock Red Hat 9).
    """

    label = "pthread"
    cache_weight = 1.2
    #: Default pthread stack reservation (kept small so the simulated
    #: 32-bit address space is not the binding constraint, as in reality
    #: where pthread stacks are lazily faulted).
    stack_bytes = 16 * 1024

    def __init__(self, processor: Processor):
        super().__init__(processor)

    def _create(self, index: int) -> FlowHandle:
        self.processor.kernel.thread_create()
        # Stacks are reserved virtual ranges in the mmap area (the gap
        # between heap and stack) and lazily faulted: a fresh thread has
        # touched only its first page, which is how real machines fit tens
        # of thousands of 16 KB-reserved stacks in 1 GB of RAM.
        stack = self.processor.space.mmap(self.stack_bytes, region="iso",
                                          reserve_only=True,
                                          tag=f"pthread-stack{index}")
        touched = self.processor.space.physical.allocate_frames(1)
        self.processor.charge(self.profile.pthread_create_ns)
        return FlowHandle(index, payload=(stack, touched))

    def _destroy(self, handle: FlowHandle) -> None:
        stack, touched = handle.payload
        self.processor.space.munmap(stack)
        self.processor.space.physical.free_frames(touched)
        self.processor.kernel.thread_exit()

    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """One sched_yield()-driven kernel-thread switch.

        Same kernel path as a process switch minus the address-space
        change — which is why the paper notes kernel threads "tend to be
        closer in memory and time cost to processes than user-level
        threads" (Section 2.2).
        """
        n = n_flows if n_flows is not None else self.n_flows
        p = self.profile
        if p.ignores_repeated_sched_yield:
            return p.sched_yield_noop_ns
        return (p.syscall_ns + p.kthread_switch_ns
                + p.runqueue_ns_per_flow * n
                + self.cache_penalty_ns(n))
