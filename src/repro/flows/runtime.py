"""Workload execution for flow mechanisms: one kernel, three frontends.

The paper's three flow-of-control styles all need to run *the same
program* before their costs and limits can be compared honestly.  This
module is the shared substrate: a :class:`FlowWorld` owns one fast-path
:class:`~repro.kernel.EventKernel` plus per-rank mailboxes, and drives
any mix of

* **generator tasks** — UThread-style bodies (``def main(mpi)``
  generators speaking the directive protocol) trampolined one resume
  per kernel event;
* **compiled tasks** — the same bodies after
  :mod:`repro.flows.compile` turned them into flat continuation state
  machines (no generator frames, no Python stacks held across
  suspends);
* **event objects** — hand-written SDAG-style objects reacting to
  message-delivery events (the paper's "awkward but unbounded" form).

Trace-identity contract (pinned by ``tests/flows/test_differential.py``):
a generator task and its compiled translation produce **byte-identical
kernel traces**.  Both forms dispatch through the single
:meth:`FlowWorld._resume` site, post with the same ``(time=0.0,
category="flow.resume", flow="r<rank>")`` labels in the same order, and
a receive whose message is already queued continues synchronously in
both (no kernel event).  Bulk transitions — seeding all ranks, barrier
release — go through ``post_batch``.

Cost model: the world charges ``dispatch_cost_ns`` (the owning
mechanism's modeled switch cost) per dispatch into
:attr:`FlowWorld.modeled_switch_ns`, and bodies charge their compute
via ``mpi.charge`` into :attr:`FlowWorld.work_ns`.  Neither appears in
the trace, so mechanisms with different cost models still compare
byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ReproError
from repro.kernel import EventKernel

__all__ = [
    "FlowMessage",
    "FlowProgram",
    "FlowContext",
    "FlowWorld",
    "WorkloadRun",
    "DONE",
    "SUSPENDED",
]


class _Sentinel:
    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{self._name}>"


#: Returned by a continuation state when its task finished.
DONE = _Sentinel("flow-done")
#: Returned by a continuation state after parking a resume point.
SUSPENDED = _Sentinel("flow-suspended")


class FlowMessage:
    """One rank-to-rank message (source, tag, payload)."""

    __slots__ = ("src", "tag", "data")

    def __init__(self, src: int, tag: Any, data: Any) -> None:
        self.src = src
        self.tag = tag
        self.data = data

    def matches(self, source: Optional[int], tag: Any) -> bool:
        """MPI-style wildcard matching (None = any)."""
        if source is not None and self.src != source:
            return False
        if tag is not None and self.tag != tag:
            return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlowMessage(src={self.src}, tag={self.tag!r})"


@dataclass
class FlowProgram:
    """One workload, in up to three forms.

    ``body`` is the thread form: a generator function ``main(mpi)``
    shared by every rank (rank identity comes from ``mpi.rank``), which
    is also what :mod:`repro.flows.compile` consumes.  ``event_objects``
    is the optional hand-written SDAG/event-object form: a factory
    ``(world, rank) -> object`` where the object implements ``start()``
    and ``on_message(msg)`` and calls ``world.finish(rank)`` when done.
    ``results`` is a shared output dict bodies may write into.
    """

    name: str
    ranks: int
    body: Callable[..., Any]
    event_objects: Optional[Callable[["FlowWorld", int], Any]] = None
    results: Dict[int, Any] = field(default_factory=dict)


class FlowContext:
    """The generator-form runtime handle (the ``mpi`` receiver).

    Deliberately a semantic subset of
    :class:`~repro.ampi.context.AmpiContext`, with the same suspend
    contract per method name, so the interprocedural flow analysis
    (``repro.analysis.flow``) classifies bodies written against it with
    the unchanged AMPI runtime interface: ``recv``/``barrier`` suspend,
    ``send``/``charge`` do not.
    """

    __slots__ = ("_world", "_task", "rank", "nranks")

    def __init__(self, world: "FlowWorld", task: "_GeneratorTask") -> None:
        self._world = world
        self._task = task
        self.rank = task.rank
        self.nranks = world.ranks

    # -- non-suspending -------------------------------------------------

    def send(self, dest: int, data: Any, tag: Any = None) -> None:
        """Deposit a message at ``dest`` (eager, never suspends)."""
        self._world.send(self.rank, dest, data, tag)

    def charge(self, ns: float) -> None:
        """Account ``ns`` of modeled compute for this rank."""
        self._world.charge(ns)

    @property
    def results(self) -> Dict[int, Any]:
        """The world's shared output dict (write ``results[rank]``)."""
        return self._world.results

    # -- suspending (generator methods, driven by ``yield from``) -------

    def recv(self, source: Optional[int] = None, tag: Any = None):
        """Receive a matching message's payload; suspends until one
        arrives.  Returns synchronously (no kernel event) when a match
        is already queued — the compiled form mirrors this exactly."""
        world, task = self._world, self._task
        while True:
            msg = world._match(task.rank, source, tag)
            if msg is not None:
                return msg.data
            world._set_waiting(task.rank, source, tag)
            yield "suspend"

    def barrier(self):
        """Block until every rank has arrived; the last arrival releases
        all ranks with one ``post_batch``."""
        self._world._barrier_arrive()
        yield "suspend"


class _GeneratorTask:
    """Trampoline around one thread-form body generator."""

    __slots__ = ("rank", "flow", "gen")
    kind = "thread"

    def __init__(self, world: "FlowWorld", rank: int,
                 body: Callable[..., Any]) -> None:
        self.rank = rank
        self.flow = world.flow_label(rank)
        self.gen = body(FlowContext(world, self))

    def step(self, world: "FlowWorld") -> None:
        try:
            directive = self.gen.send(None)
        except StopIteration:
            world._task_done(self)
            return
        if directive == "suspend":
            return
        if directive == "yield":
            world._post_resume(self)
            return
        if directive == "exit":
            self.gen.close()
            world._task_done(self)
            return
        raise ReproError(
            f"flow r{self.rank}: unsupported directive {directive!r} "
            f"(the flows runtime speaks yield/suspend/exit)")

    def on_message(self, world: "FlowWorld", msg: FlowMessage) -> None:
        world._mailbox_deliver(self, msg)


class CompiledContext:
    """The compiled-form runtime handle (also bound to ``mpi``).

    Generated state functions receive this as their first argument
    under the body's original receiver name, so non-suspending calls
    (``mpi.send``, ``mpi.charge``, ``mpi.rank``) run verbatim; the
    lowered suspend points call the ``op_*`` continuation primitives.
    """

    __slots__ = ("_world", "_task", "rank", "nranks")

    def __init__(self, world: "FlowWorld", task: "CompiledTask") -> None:
        self._world = world
        self._task = task
        self.rank = task.rank
        self.nranks = world.ranks

    # -- non-suspending (same surface as FlowContext) -------------------

    def send(self, dest: int, data: Any, tag: Any = None) -> None:
        self._world.send(self.rank, dest, data, tag)

    def charge(self, ns: float) -> None:
        self._world.charge(ns)

    @property
    def results(self) -> Dict[int, Any]:
        return self._world.results

    # -- continuation primitives (called from generated code) -----------

    def op_recv(self, frame, retry, cont, var: Optional[str],
                source: Optional[int] = None, tag: Any = None):
        """``x = yield from mpi.recv(...)`` in continuation form.

        Match now → store and continue synchronously; no match →
        register the wait and park ``retry`` (which re-runs the match,
        exactly like the generator's receive loop)."""
        world, task = self._world, self._task
        msg = world._match(task.rank, source, tag)
        if msg is not None:
            if var is not None:
                setattr(frame, var, msg.data)
            return (cont, frame)
        world._set_waiting(task.rank, source, tag)
        task._save(retry, frame)
        return SUSPENDED

    def op_barrier(self, frame, cont):
        """``yield from mpi.barrier()`` in continuation form."""
        self._world._barrier_arrive()
        self._task._save(cont, frame)
        return SUSPENDED

    def op_yield(self, frame, cont):
        """``yield "yield"`` — cooperative yield via kernel re-post."""
        task = self._task
        task._save(cont, frame)
        self._world._post_resume(task)
        return SUSPENDED

    def op_exit(self, frame):
        """``yield "exit"`` — finish this flow immediately."""
        return DONE

    def op_return(self, frame, value):
        """``return`` — hand the value to the delegating caller's
        continuation, or finish the task at the outermost frame."""
        ret = frame._ret
        if ret is None:
            return DONE
        cont, caller_frame, var = ret
        if var is not None:
            setattr(caller_frame, var, value)
        return (cont, caller_frame)


class CompiledTask:
    """One flow running as a compiled continuation state machine."""

    __slots__ = ("rank", "flow", "ctx", "_pc", "_frame")
    kind = "compiled"

    def __init__(self, world: "FlowWorld", rank: int, entry,
                 frame) -> None:
        self.rank = rank
        self.flow = world.flow_label(rank)
        self.ctx = CompiledContext(world, self)
        self._pc = entry
        self._frame = frame

    def _save(self, pc, frame) -> None:
        self._pc = pc
        self._frame = frame

    def step(self, world: "FlowWorld") -> None:
        pc, frame = self._pc, self._frame
        self._pc = self._frame = None
        ctx = self.ctx
        res = pc(ctx, frame)
        # The trampoline: states hand back (next_state, frame) until a
        # primitive parks a resume point or the outermost frame returns.
        while res.__class__ is tuple:
            pc, frame = res
            res = pc(ctx, frame)
        if res is DONE:
            world._task_done(self)
        elif res is not SUSPENDED:
            raise ReproError(
                f"flow r{self.rank}: compiled state returned {res!r} "
                f"(expected a continuation, DONE, or SUSPENDED)")

    def on_message(self, world: "FlowWorld", msg: FlowMessage) -> None:
        world._mailbox_deliver(self, msg)


class _EventObjectTask:
    """One flow as a hand-written event-driven object."""

    __slots__ = ("rank", "flow", "obj")
    kind = "event"

    def __init__(self, world: "FlowWorld", rank: int,
                 factory: Callable[["FlowWorld", int], Any]) -> None:
        self.rank = rank
        self.flow = world.flow_label(rank)
        self.obj = factory(world, rank)

    def step(self, world: "FlowWorld") -> None:
        # The seed event: the object's start() entry method.
        self.obj.start()

    def on_message(self, world: "FlowWorld", msg: FlowMessage) -> None:
        # Event objects get one kernel event per delivery — suspension
        # is inverted into the object's own state, which is exactly the
        # awkwardness the paper's Section 2.4 describes.
        world.kernel.post(0.0, world._deliver, (self, msg),
                          "flow.deliver", self.flow)


@dataclass(frozen=True)
class WorkloadRun:
    """Outcome of one workload execution under one mechanism."""

    mechanism: str
    platform: str
    program: str
    ranks: int
    dispatches: int
    kernel_events: int
    work_ns: float
    modeled_switch_ns: float
    results: Dict[int, Any]
    trace: Optional[List[dict]] = None

    def trace_bytes(self) -> bytes:
        """Canonical trace rendering for byte-level comparison."""
        import json
        if self.trace is None:
            raise ReproError("run was not traced")
        return "\n".join(
            json.dumps(e, sort_keys=True) for e in self.trace).encode()


class FlowWorld:
    """Per-run execution world: kernel + mailboxes + completion."""

    def __init__(self, ranks: int, dispatch_cost_ns: float = 0.0,
                 kernel: Optional[EventKernel] = None) -> None:
        if ranks <= 0:
            raise ReproError("a flow world needs at least one rank")
        self.ranks = ranks
        # NB `kernel or ...` would discard an empty kernel (__len__ == 0
        # makes it falsy) — compare against None explicitly.
        self.kernel = kernel if kernel is not None \
            else EventKernel(name="flows", causality=False)
        self.dispatch_cost_ns = dispatch_cost_ns
        self._flow_labels = [f"r{i}" for i in range(ranks)]
        self._tasks: List[Any] = []
        self._mailbox: List[List[FlowMessage]] = [[] for _ in range(ranks)]
        self._waiting: List[Optional[tuple]] = [None] * ranks
        self._barrier_count = 0
        self._done = 0
        self.dispatches = 0
        self.work_ns = 0.0
        self.modeled_switch_ns = 0.0
        #: Shared per-rank output dict, exposed to bodies as
        #: ``mpi.results`` (all three forms).
        self.results: Dict[int, Any] = {}

    # -- construction ---------------------------------------------------

    def flow_label(self, rank: int) -> str:
        return self._flow_labels[rank]

    def spawn_threads(self, body: Callable[..., Any]) -> None:
        """Populate every rank with the generator form of ``body``."""
        self._require_empty()
        self._tasks = [_GeneratorTask(self, r, body)
                       for r in range(self.ranks)]

    def spawn_compiled(self, compiled) -> None:
        """Populate every rank with a compiled continuation program
        (a :class:`repro.flows.compile.CompiledFlow`)."""
        self._require_empty()
        self._tasks = [
            CompiledTask(self, r, compiled.entry, compiled.new_frame())
            for r in range(self.ranks)]

    def spawn_events(self, factory: Callable[["FlowWorld", int], Any]) -> None:
        """Populate every rank with a hand-written event object."""
        self._require_empty()
        self._tasks = [_EventObjectTask(self, r, factory)
                       for r in range(self.ranks)]

    def _require_empty(self) -> None:
        if self._tasks:
            raise ReproError("world already populated")

    # -- execution ------------------------------------------------------

    def seed(self) -> None:
        """Post the initial resume for every rank (one batch)."""
        tasks = self._tasks
        self.kernel.post_batch(
            [0.0] * len(tasks), self._resume, category="flow.resume",
            args_list=[(t,) for t in tasks],
            flows=[t.flow for t in tasks])

    def run(self, max_events: Optional[int] = None) -> int:
        """Seed (if nothing is pending) and drain to quiescence.

        Raises :class:`~repro.errors.ReproError` if the kernel drains
        with unfinished flows (a deadlocked receive), naming the stuck
        ranks — crash containment for the sweep cells.
        """
        if not self._tasks:
            raise ReproError("world has no tasks (spawn first)")
        if len(self.kernel) == 0 and self.dispatches == 0:
            self.seed()
        processed = self.kernel.run_batch(max_events)
        if self.kernel.empty and self._done < len(self._tasks):
            stuck = [f"r{t.rank}(waiting={self._waiting[t.rank]})"
                     for t in self._tasks
                     if self._waiting[t.rank] is not None]
            raise ReproError(
                f"flow world drained with {len(self._tasks) - self._done} "
                f"unfinished flows: {', '.join(stuck) or 'none waiting'}")
        return processed

    # -- dispatch sites (shared by thread + compiled forms) -------------

    def _resume(self, task) -> None:
        self.dispatches += 1
        self.modeled_switch_ns += self.dispatch_cost_ns
        task.step(self)

    def _deliver(self, task, msg: FlowMessage) -> None:
        self.dispatches += 1
        self.modeled_switch_ns += self.dispatch_cost_ns
        task.obj.on_message(msg)

    def _post_resume(self, task) -> None:
        self.kernel.post(0.0, self._resume, (task,), "flow.resume",
                         task.flow)

    # -- messaging ------------------------------------------------------

    def send(self, src: int, dst: int, data: Any, tag: Any = None) -> None:
        """Deposit a message at rank ``dst`` (any task kind)."""
        if not 0 <= dst < self.ranks:
            raise ReproError(f"bad destination rank {dst}")
        self._tasks[dst].on_message(self, FlowMessage(src, tag, data))

    def _mailbox_deliver(self, task, msg: FlowMessage) -> None:
        rank = task.rank
        self._mailbox[rank].append(msg)
        waiting = self._waiting[rank]
        if waiting is not None and msg.matches(*waiting):
            self._waiting[rank] = None
            self._post_resume(task)

    def _match(self, rank: int, source: Optional[int],
               tag: Any) -> Optional[FlowMessage]:
        box = self._mailbox[rank]
        for i, msg in enumerate(box):
            if msg.matches(source, tag):
                del box[i]
                return msg
        return None

    def _set_waiting(self, rank: int, source: Optional[int],
                     tag: Any) -> None:
        self._waiting[rank] = (source, tag)

    def _barrier_arrive(self) -> None:
        self._barrier_count += 1
        if self._barrier_count == len(self._tasks):
            self._barrier_count = 0
            tasks = self._tasks
            self.kernel.post_batch(
                [0.0] * len(tasks), self._resume, category="flow.resume",
                args_list=[(t,) for t in tasks],
                flows=[t.flow for t in tasks])

    # -- accounting -----------------------------------------------------

    def charge(self, ns: float) -> None:
        self.work_ns += ns

    def finish(self, rank: int) -> None:
        """Event-object completion signal."""
        self._task_done(self._tasks[rank])

    def _task_done(self, task) -> None:
        self._done += 1

    @property
    def finished(self) -> int:
        return self._done
