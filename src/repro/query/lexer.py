"""Hand-rolled tokenizer for the trace-query language.

One pass, no regexes, no host state: :func:`tokenize` turns a query
string into a flat list of :class:`Token`\\ s, each carrying its 0-based
character offset so every later error (parse or semantic) can point at
the exact column.  The token kinds are deliberately few:

* ``NUM`` — integer or float literals, with optional exponent
  (``42``, ``3.5``, ``1e-06``);
* ``STR`` — single- or double-quoted strings with backslash escapes;
* ``NAME`` — identifiers (field names, function names) and the
  keywords ``and`` / ``or`` / ``not`` / ``by`` / ``true`` / ``false`` /
  ``none``;
* ``OP`` — ``== != <= >= < > + - * / % ( ) . ,``;
* ``END`` — end of input (always the last token).
"""

from __future__ import annotations

from typing import List

from repro.errors import QuerySyntaxError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Reserved identifiers: never valid as bare field names.
KEYWORDS = frozenset({"and", "or", "not", "by", "true", "false", "none"})

_TWO_CHAR_OPS = ("==", "!=", "<=", ">=")
_ONE_CHAR_OPS = frozenset("<>+-*/%().,")

_ESCAPES = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}


class Token:
    """One lexeme: ``kind`` (NUM/STR/NAME/OP/END), ``value``, ``pos``."""

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value, pos: int) -> None:
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r}, @{self.pos})"


def _lex_string(text: str, i: int) -> tuple:
    quote = text[i]
    start = i
    i += 1
    out: List[str] = []
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise QuerySyntaxError("unterminated escape", text, i)
            esc = text[i + 1]
            if esc not in _ESCAPES:
                raise QuerySyntaxError(f"unknown escape \\{esc}", text, i)
            out.append(_ESCAPES[esc])
            i += 2
            continue
        if ch == quote:
            return "".join(out), i + 1
        out.append(ch)
        i += 1
    raise QuerySyntaxError("unterminated string", text, start)


def _lex_number(text: str, i: int) -> tuple:
    start = i
    n = len(text)
    while i < n and text[i].isdigit():
        i += 1
    is_float = False
    # A '.' is part of the number only when digits follow — `busy.0`
    # keeps its dot for the parser's dotted-path rule, but a trailing
    # `1.` is rejected rather than silently meaning `1`.
    if i < n and text[i] == "." and i + 1 < n and text[i + 1].isdigit():
        is_float = True
        i += 1
        while i < n and text[i].isdigit():
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and text[j].isdigit():
            is_float = True
            i = j
            while i < n and text[i].isdigit():
                i += 1
    lexeme = text[start:i]
    return (float(lexeme) if is_float else int(lexeme)), i


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens; raises :class:`QuerySyntaxError` with
    the offending position on any character the language has no use for."""
    tokens: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch in "'\"":
            value, j = _lex_string(text, i)
            tokens.append(Token("STR", value, i))
            i = j
            continue
        if ch.isdigit():
            value, j = _lex_number(text, i)
            tokens.append(Token("NUM", value, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(Token("NAME", text[i:j], i))
            i = j
            continue
        two = text[i:i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token("OP", two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        raise QuerySyntaxError(f"unexpected character {ch!r}", text, i)
    tokens.append(Token("END", None, n))
    return tokens
