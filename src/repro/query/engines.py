"""Query engines over trace entries: filter, aggregate, timeline.

All three consume the plain list-of-dicts form produced by
:func:`repro.kernel.trace.load_trace` and emit deterministic, JSON-able
results — sorted group keys, fixed window boundaries, no host state —
so their output can be fingerprinted the same way the obs report is.

The small helpers :func:`window_index` and :func:`trace_makespan` are
shared with :mod:`repro.obs.report`: the report's imbalance timeline is
a specialization of the same attribution rule (charge an entry to the
window containing its event time, clamped to the run's extent).
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

from repro.errors import QueryError
from repro.query.expr import Call, Expr, Field
from repro.query.parser import AggregateSpec, parse, parse_aggregate

__all__ = ["compile_predicate", "filter_entries", "aggregate_entries",
           "timeline_entries", "window_index", "trace_makespan",
           "canonical_json"]

Entry = Dict[str, Any]


def canonical_json(obj: Any) -> str:
    """The one serialization used for keys, dumps, and fingerprints:
    sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def window_index(t: float, width: float, windows: int) -> int:
    """Window containing time ``t``, clamped into ``[0, windows - 1]``.

    The lower clamp matters: a negative timestamp (clock skew, synthetic
    entries) must charge the *first* window, not wrap around to the last
    via Python negative indexing.
    """
    if t <= 0 or width <= 0:
        return 0
    return min(int(t / width), windows - 1)


def trace_makespan(entries: Iterable[Entry]) -> float:
    """Run extent in virtual ns: the max over observer clock snapshots
    and ``end``-entry event times (0.0 for an empty trace)."""
    makespan = 0.0
    for e in entries:
        for t in e.get("clock", {}).values():
            makespan = max(makespan, t)
        if e.get("ev") == "end":
            makespan = max(makespan, e.get("t", 0.0))
    return makespan


# ---------------------------------------------------------------------------
# filter
# ---------------------------------------------------------------------------


def compile_predicate(query: Union[str, Expr]) -> Callable[[Entry], bool]:
    """Parse (if needed) and close over a query expression as an
    entry -> bool predicate.  Total: never raises on trace data."""
    tree = parse(query) if isinstance(query, str) else query
    evaluate = tree.evaluate
    return lambda entry: bool(evaluate(entry))


def filter_entries(entries: Iterable[Entry],
                   query: Union[str, Expr, Callable[[Entry], bool]],
                   ) -> List[Entry]:
    """Entries matching ``query`` (a string, parsed tree, or predicate),
    in trace order."""
    pred = query if callable(query) else compile_predicate(query)
    return [e for e in entries if pred(e)]


# ---------------------------------------------------------------------------
# aggregate
# ---------------------------------------------------------------------------


def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


class _Accumulator:
    """One aggregate cell: fold entries, then finish to a JSON scalar."""

    __slots__ = ("call", "n", "total", "lo", "hi")

    def __init__(self, call: Call) -> None:
        self.call = call
        self.n = 0
        self.total = 0
        self.lo: Optional[float] = None
        self.hi: Optional[float] = None

    def add(self, entry: Entry) -> None:
        name = self.call.name
        if name == "count":
            if not self.call.args or self.call.args[0].evaluate(entry):
                self.n += 1
            return
        value = self.call.args[0].evaluate(entry)
        if not _is_number(value):
            return
        self.n += 1
        self.total += value
        self.lo = value if self.lo is None else min(self.lo, value)
        self.hi = value if self.hi is None else max(self.hi, value)

    def finish(self) -> Any:
        name = self.call.name
        if name == "count":
            return self.n
        if name == "sum":
            return self.total
        if name == "min":
            return self.lo
        if name == "max":
            return self.hi
        return self.total / self.n if self.n else None  # avg


def aggregate_entries(entries: Iterable[Entry],
                      spec: Union[str, AggregateSpec]) -> Dict[str, Any]:
    """Fold entries through an aggregate spec.

    Returns ``{"rows": [...], "entries": N}`` where each row carries
    ``group`` (the by-field values, absent keys as ``null``) and
    ``aggregates`` keyed by the canonical unparse of each call.  Rows
    are sorted by the canonical JSON of their group values, so output
    order never depends on trace order.  Non-numeric and missing values
    are skipped by sum/min/max/avg (``sum`` of nothing is 0, the others
    are ``null``); without a ``by`` clause there is exactly one row.
    """
    if isinstance(spec, str):
        spec = parse_aggregate(spec)
    by_names = [f.unparse() for f in spec.by]
    groups: Dict[str, tuple] = {}
    n_entries = 0
    for e in entries:
        n_entries += 1
        key_values = [f.evaluate(e) for f in spec.by]
        key = canonical_json(key_values)
        cell = groups.get(key)
        if cell is None:
            cell = (key_values, [_Accumulator(a) for a in spec.aggs])
            groups[key] = cell
        for acc in cell[1]:
            acc.add(e)
    if not spec.by and not groups:
        groups[""] = ([], [_Accumulator(a) for a in spec.aggs])
    rows = []
    for key in sorted(groups):
        key_values, accs = groups[key]
        rows.append({
            "group": dict(zip(by_names, key_values)),
            "aggregates": {a.call.unparse(): a.finish()
                           for a in accs},
        })
    return {"rows": rows, "entries": n_entries}


# ---------------------------------------------------------------------------
# timeline
# ---------------------------------------------------------------------------


def timeline_entries(entries: List[Entry], windows: int = 8,
                     value: Union[str, Expr, None] = None,
                     where: Union[str, Expr, None] = None,
                     ) -> Dict[str, Any]:
    """Windowed series over the trace: split the makespan into equal
    windows and charge each matching entry to the window containing its
    event time (the obs attribution rule, clamped at both ends).

    ``value`` is an optional expression summed per window (numeric
    results only); every window also reports its matching-entry count.
    An empty or zero-extent trace yields no windows.
    """
    if windows <= 0:
        raise QueryError("timeline needs at least one window")
    pred = compile_predicate(where) if where is not None else None
    value_expr = (parse(value) if isinstance(value, str) else value)
    makespan = trace_makespan(entries)
    if makespan <= 0:
        return {"makespan_ns": makespan, "windows": []}
    width = makespan / windows
    counts = [0] * windows
    sums = [0.0] * windows
    for e in entries:
        if pred is not None and not pred(e):
            continue
        w = window_index(e.get("t", 0.0), width, windows)
        counts[w] += 1
        if value_expr is not None:
            v = value_expr.evaluate(e)
            if _is_number(v):
                sums[w] += v
    out = []
    for w in range(windows):
        row: Dict[str, Any] = {"t0": w * width, "t1": (w + 1) * width,
                               "count": counts[w]}
        if value_expr is not None:
            row["sum"] = sums[w]
        out.append(row)
    return {"makespan_ns": makespan, "windows": out}
