"""``python -m repro.query`` — trace queries and time travel.

Subcommands (exit codes follow migralint's convention — 0 success,
1 "found something" where the verb has a found/not-found meaning,
2 usage or input error):

``filter <trace> <expr> [--json] [--limit N] [--count]``
    Stream trace entries matching a predicate.  Exit 0 when at least
    one entry matched, 1 when none did.

``aggregate <trace> <spec> [--json]``
    Fold the trace through ``count()/sum()/min()/max()/avg()`` cells,
    optionally ``by`` group fields; rows come out in sorted-key order.

``timeline <trace> [--windows N] [--value EXPR] [--where EXPR] [--json]``
    Windowed series over the makespan using the obs attribution rule
    (entry charged to the window containing its event time, clamped).

``bisect <runspec-a> <runspec-b> [--json]``
    Re-execute both runs under a recording tracer and report the first
    event at which the traces diverge.  Exit 0 when the traces are
    identical, 1 when they diverge.

``at <runspec> <time> [--json]``
    Replay a run to a virtual timestamp (``250000``) or event count
    (``@120``) and dump the reconstructed cluster state as canonical
    JSON.

Runspecs name replayable runs: ``chaos:stencil:seed=3`` or
``flows:ring:form=compiled:ranks=4:rounds=3`` (see
:func:`repro.query.replay.parse_runspec`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict

from repro.errors import QuerySyntaxError, ReproError
from repro.kernel.trace import load_trace
from repro.query.engines import (aggregate_entries, canonical_json,
                                 compile_predicate, timeline_entries)
from repro.query.replay import (first_divergence, parse_runspec,
                                parse_timespec, replay_at, run_recorded)


def _fail(message: str) -> int:
    print(f"error: {message}", file=sys.stderr)
    return 2


def _fail_syntax(e: QuerySyntaxError) -> int:
    print(f"error: {e.caret()}" if e.text else f"error: {e}",
          file=sys.stderr)
    return 2


def _emit(obj: Any, as_json: bool, render) -> None:
    if as_json:
        print(canonical_json(obj))
    else:
        print(render(obj))


# -- renderers --------------------------------------------------------------


def _render_aggregate(result: Dict[str, Any]) -> str:
    lines = [f"== {result['entries']} entries"]
    for row in result["rows"]:
        group = ", ".join(f"{k}={json.dumps(v)}"
                          for k, v in row["group"].items())
        cells = "  ".join(f"{k}={json.dumps(v)}"
                          for k, v in row["aggregates"].items())
        lines.append(f"  {group + ':  ' if group else ''}{cells}")
    return "\n".join(lines)


def _render_timeline(result: Dict[str, Any]) -> str:
    lines = [f"== makespan {result['makespan_ns']:.0f}ns, "
             f"{len(result['windows'])} windows"]
    peak = max((w["count"] for w in result["windows"]), default=0)
    for w in result["windows"]:
        bar = "#" * (round(w["count"] * 30 / peak) if peak else 0)
        cell = f"  sum={w['sum']:g}" if "sum" in w else ""
        lines.append(f"  [{w['t0']:>12.0f} .. {w['t1']:>12.0f}]  "
                     f"{w['count']:>6}{cell}  {bar}")
    return "\n".join(lines)


def _render_divergence(d: Dict[str, Any]) -> str:
    a, b = d["a"], d["b"]
    lines = [f"first divergence at event index {d['index']}"]
    for label, rec in (("a", a), ("b", b)):
        if rec is None:
            lines.append(f"  {label}: <trace ended>")
        else:
            head = ", ".join(f"{k}={json.dumps(rec[k])}"
                             for k in ("seq", "ev", "category", "site")
                             if k in rec)
            lines.append(f"  {label}: {head}")
            lines.append(f"     {canonical_json(rec)}")
    return "\n".join(lines)


# -- verbs ------------------------------------------------------------------


def _cmd_filter(args) -> int:
    pred = compile_predicate(args.expr)
    entries = load_trace(args.trace)
    matched = 0
    for e in entries:
        if not pred(e):
            continue
        matched += 1
        if not args.count and (args.limit is None or matched <= args.limit):
            print(canonical_json(e) if args.json
                  else json.dumps(e, sort_keys=True))
    if args.count:
        print(matched)
    elif args.limit is not None and matched > args.limit:
        print(f"... {matched - args.limit} more "
              f"({matched} total)", file=sys.stderr)
    return 0 if matched else 1


def _cmd_aggregate(args) -> int:
    result = aggregate_entries(load_trace(args.trace), args.spec)
    _emit(result, args.json, _render_aggregate)
    return 0


def _cmd_timeline(args) -> int:
    result = timeline_entries(load_trace(args.trace),
                              windows=args.windows,
                              value=args.value, where=args.where)
    _emit(result, args.json, _render_timeline)
    return 0


def _cmd_bisect(args) -> int:
    spec_a = parse_runspec(args.runspec_a)
    spec_b = parse_runspec(args.runspec_b)
    trace_a = run_recorded(spec_a)
    trace_b = run_recorded(spec_b)
    d = first_divergence(trace_a, trace_b)
    if d is None:
        result = {"diverged": False, "events": len(trace_a),
                  "a": spec_a.canonical(), "b": spec_b.canonical()}
        _emit(result, args.json,
              lambda r: f"traces identical ({r['events']} events)")
        return 0
    result = {"diverged": True, "a_spec": spec_a.canonical(),
              "b_spec": spec_b.canonical(), **d}
    _emit(result, args.json, _render_divergence)
    return 1


def _cmd_at(args) -> int:
    spec = parse_runspec(args.runspec)
    state = replay_at(spec, parse_timespec(args.time))
    # Canonical JSON either way: the state dump *is* the product, and
    # its byte-stability across invocations is part of the contract.
    print(canonical_json(state))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.query",
        description="Trace queries and time travel over replayable runs")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("filter", help="stream entries matching a predicate")
    p.add_argument("trace")
    p.add_argument("expr")
    p.add_argument("--json", action="store_true",
                   help="canonical JSON per entry (no whitespace)")
    p.add_argument("--limit", type=int, default=None,
                   help="print at most N matching entries")
    p.add_argument("--count", action="store_true",
                   help="print only the match count")
    p.set_defaults(fn=_cmd_filter)

    p = sub.add_parser("aggregate",
                       help="count/sum/min/max/avg with group by")
    p.add_argument("trace")
    p.add_argument("spec", help="e.g. \"count(), sum(bytes) by category\"")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_aggregate)

    p = sub.add_parser("timeline", help="windowed series over the makespan")
    p.add_argument("trace")
    p.add_argument("--windows", type=int, default=8)
    p.add_argument("--value", default=None,
                   help="expression summed per window")
    p.add_argument("--where", default=None,
                   help="predicate restricting counted entries")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser("bisect",
                       help="first divergence between two replayed runs")
    p.add_argument("runspec_a", metavar="runspec-a")
    p.add_argument("runspec_b", metavar="runspec-b")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=_cmd_bisect)

    p = sub.add_parser("at",
                       help="replay to a point and dump cluster state")
    p.add_argument("runspec")
    p.add_argument("time", help="virtual ns (250000) or @N events (@120)")
    p.set_defaults(fn=_cmd_at)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except QuerySyntaxError as e:
        return _fail_syntax(e)
    except (OSError, ReproError) as e:
        return _fail(str(e))
    except BrokenPipeError:
        sys.stdout = None
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
