"""Recursive-descent parser for the trace-query language.

Grammar (loosest to tightest; comparisons deliberately do not chain)::

    expr        := or
    or          := and ("or" and)*
    and         := neg ("and" neg)*
    neg         := "not" neg | comparison
    comparison  := additive (("==" | "!=" | "<" | "<=" | ">" | ">=") additive)?
    additive    := term (("+" | "-") term)*
    term        := unary (("*" | "/" | "%") unary)*
    unary       := "-" unary | atom
    atom        := NUM | STR | "true" | "false" | "none"
                 | NAME "(" args ")" | field | "(" expr ")"
    field       := NAME ("." (NAME | NUM))*

An aggregate spec is a separate entry point::

    aggspec     := aggcall ("," aggcall)* ("by" field ("," field)*)?
    aggcall     := ("count" | "sum" | "min" | "max" | "avg") "(" args ")"

Every failure raises :class:`~repro.errors.QuerySyntaxError` carrying
the character position — never a bare traceback.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import QuerySyntaxError
from repro.query.expr import (AGGREGATE_NAMES, BUILTIN_NAMES, Binary, Call,
                              Expr, Field, Literal, Unary)
from repro.query.lexer import KEYWORDS, Token, tokenize

__all__ = ["parse", "parse_aggregate", "AggregateSpec"]

_CMP_OPS = ("==", "!=", "<=", ">=", "<", ">")

#: Required argument counts; ``count`` alone may also be nullary.
_ARITY = {"has": 1, "len": 1, "abs": 1, "int": 1, "float": 1,
          "startswith": 2, "count": 1, "sum": 1, "min": 1, "max": 1,
          "avg": 1}


class AggregateSpec:
    """A parsed aggregate request: aggregate calls plus group-by fields."""

    __slots__ = ("aggs", "by")

    def __init__(self, aggs: Tuple[Call, ...], by: Tuple[Field, ...]) -> None:
        self.aggs = tuple(aggs)
        self.by = tuple(by)

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AggregateSpec)
                and self.aggs == other.aggs and self.by == other.by)

    def __hash__(self) -> int:
        return hash((self.aggs, self.by))

    def unparse(self) -> str:
        text = ", ".join(a.unparse() for a in self.aggs)
        if self.by:
            text += " by " + ", ".join(f.unparse() for f in self.by)
        return text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AggregateSpec {self.unparse()!r}>"


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.i = 0

    # -- token plumbing ----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.i]

    def _advance(self) -> Token:
        tok = self.tokens[self.i]
        self.i += 1
        return tok

    def _at_op(self, *ops: str) -> bool:
        return self.cur.kind == "OP" and self.cur.value in ops

    def _at_keyword(self, word: str) -> bool:
        return self.cur.kind == "NAME" and self.cur.value == word

    def _expect_op(self, op: str) -> Token:
        if not self._at_op(op):
            raise self._error(f"expected {op!r}")
        return self._advance()

    def _error(self, message: str) -> QuerySyntaxError:
        return QuerySyntaxError(message, self.text, self.cur.pos)

    # -- grammar rules -----------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._or()

    def _or(self) -> Expr:
        node = self._and()
        while self._at_keyword("or"):
            self._advance()
            node = Binary("or", node, self._and())
        return node

    def _and(self) -> Expr:
        node = self._not()
        while self._at_keyword("and"):
            self._advance()
            node = Binary("and", node, self._not())
        return node

    def _not(self) -> Expr:
        if self._at_keyword("not"):
            self._advance()
            return Unary("not", self._not())
        return self._comparison()

    def _comparison(self) -> Expr:
        node = self._additive()
        if self._at_op(*_CMP_OPS):
            op = self._advance().value
            right = self._additive()
            node = Binary(op, node, right)
            if self._at_op(*_CMP_OPS):
                raise self._error("comparisons do not chain; parenthesize")
        return node

    def _additive(self) -> Expr:
        node = self._term()
        while self._at_op("+", "-"):
            op = self._advance().value
            node = Binary(op, node, self._term())
        return node

    def _term(self) -> Expr:
        node = self._unary()
        while self._at_op("*", "/", "%"):
            op = self._advance().value
            node = Binary(op, node, self._unary())
        return node

    def _unary(self) -> Expr:
        if self._at_op("-"):
            self._advance()
            return Unary("-", self._unary())
        return self._atom()

    def _atom(self) -> Expr:
        tok = self.cur
        if tok.kind == "NUM" or tok.kind == "STR":
            self._advance()
            return Literal(tok.value)
        if tok.kind == "OP" and tok.value == "(":
            self._advance()
            node = self.parse_expr()
            self._expect_op(")")
            return node
        if tok.kind == "NAME":
            if tok.value == "true":
                self._advance()
                return Literal(True)
            if tok.value == "false":
                self._advance()
                return Literal(False)
            if tok.value == "none":
                self._advance()
                return Literal(None)
            if tok.value in KEYWORDS:
                raise self._error(f"unexpected keyword {tok.value!r}")
            # Lookahead one token: NAME "(" is a call, else a field.
            nxt = self.tokens[self.i + 1]
            if nxt.kind == "OP" and nxt.value == "(":
                return self._call()
            return self._field()
        raise self._error("expected a value, field, or '('")

    def _call(self) -> Call:
        name_tok = self._advance()
        name = name_tok.value
        if name not in AGGREGATE_NAMES and name not in BUILTIN_NAMES:
            raise QuerySyntaxError(f"unknown function {name!r}",
                                   self.text, name_tok.pos)
        self._expect_op("(")
        args: List[Expr] = []
        if not self._at_op(")"):
            args.append(self.parse_expr())
            while self._at_op(","):
                self._advance()
                args.append(self.parse_expr())
        self._expect_op(")")
        want = _ARITY[name]
        if len(args) != want and not (name == "count" and not args):
            raise QuerySyntaxError(
                f"{name}() takes {want} argument{'s' if want != 1 else ''}",
                self.text, name_tok.pos)
        return Call(name, tuple(args))

    def _field(self) -> Field:
        parts = [self._advance().value]
        while self._at_op("."):
            self._advance()
            seg = self.cur
            if seg.kind == "NAME" and seg.value not in KEYWORDS:
                parts.append(seg.value)
            elif seg.kind == "NUM" and isinstance(seg.value, int):
                parts.append(str(seg.value))
            else:
                raise self._error("expected a field segment after '.'")
            self._advance()
        return Field(tuple(parts))

    # -- aggregate entry point --------------------------------------------

    def parse_aggspec(self) -> AggregateSpec:
        aggs = [self._aggcall()]
        while self._at_op(","):
            self._advance()
            aggs.append(self._aggcall())
        by: List[Field] = []
        if self._at_keyword("by"):
            self._advance()
            by.append(self._by_field())
            while self._at_op(","):
                self._advance()
                by.append(self._by_field())
        return AggregateSpec(tuple(aggs), tuple(by))

    def _aggcall(self) -> Call:
        tok = self.cur
        if tok.kind != "NAME" or tok.value not in AGGREGATE_NAMES:
            raise self._error(
                "expected an aggregate call (count/sum/min/max/avg)")
        nxt = self.tokens[self.i + 1]
        if not (nxt.kind == "OP" and nxt.value == "("):
            raise QuerySyntaxError(f"{tok.value} needs parentheses",
                                   self.text, nxt.pos)
        return self._call()

    def _by_field(self) -> Field:
        if self.cur.kind != "NAME" or self.cur.value in KEYWORDS:
            raise self._error("expected a field name after 'by'")
        return self._field()

    def _expect_end(self) -> None:
        if self.cur.kind != "END":
            raise self._error("unexpected trailing input")


def parse(text: str) -> Expr:
    """Parse one scalar/boolean expression; the whole string must consume."""
    p = _Parser(text)
    node = p.parse_expr()
    p._expect_end()
    return node


def parse_aggregate(text: str) -> AggregateSpec:
    """Parse an aggregate spec: ``agg ("," agg)* ("by" field ...)?``."""
    p = _Parser(text)
    spec = p.parse_aggspec()
    p._expect_end()
    return spec
