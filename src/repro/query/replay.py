"""Time travel over replayable runs: re-execute, diff, stop, dump.

Runs in this codebase are byte-replayable — a chaos run is fully
determined by (workload, seed) and a flows run by (program, form,
ranks, ...) — so "un-executing" a finished run needs no reverse
execution at all: re-run it forward under a recording tracer and stop
where you want to look.  This module is that substrate:

* :func:`parse_runspec` — the textual run coordinates
  (``chaos:stencil:seed=3``, ``flows:ring:form=compiled:ranks=4``);
* :func:`run_recorded` — re-execute a runspec to completion and return
  its trace entries;
* :func:`first_divergence` — the bisect primitive: first index where
  two traces disagree;
* :func:`replay_at` — re-execute up to a virtual time (``250000``) or
  event count (``@120``) and dump the reconstructed cluster state —
  per-PE queues, rank placement, in-flight messages, LB database — as
  a canonical JSON-able dict.

Everything run-producing is imported lazily inside the builders:
:mod:`repro.obs` imports the query engines, so this module must not
pull obs/chaos/flows at import time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import QueryError

__all__ = ["RunSpec", "parse_runspec", "parse_timespec", "run_recorded",
           "first_divergence", "replay_at"]

#: Fault rates every ``chaos:`` runspec replays under.  Fixed and
#: nonzero on purpose: the rates are part of the runspec contract (the
#: same spec must always rebuild the same run), and with the all-zero
#: default config every seed would produce the identical fault-free
#: trace — there would be nothing for ``bisect`` to find.  The profile
#: matches the chaos suite's standard sweep rates.
REPLAY_FAULT_RATES = dict(
    drop_rate=0.01, delay_rate=0.08, reorder_rate=0.05,
    migrate_abort_rate=0.1, migrate_bounce_rate=0.05,
    ckpt_error_rate=0.02, ckpt_corrupt_rate=0.02,
    crash_rate=0.15, evac_rate=0.1)

_CHAOS_TARGETS = ("stencil", "samplesort", "btmz", "fragile-reduce")
_FLOWS_TARGETS = ("spin", "ring", "pingpong", "stencil")
_FORMS = ("thread", "compiled", "event")

_CHAOS_KEYS = frozenset({"seed"})
_FLOWS_KEYS = frozenset({"form", "ranks", "rounds", "cells", "steps",
                         "seed"})


class RunSpec:
    """Parsed run coordinates: kind, target, and integer/string params."""

    __slots__ = ("kind", "target", "params")

    def __init__(self, kind: str, target: str,
                 params: Dict[str, Any]) -> None:
        self.kind = kind
        self.target = target
        self.params = dict(params)

    def canonical(self) -> str:
        tail = "".join(f":{k}={self.params[k]}"
                       for k in sorted(self.params))
        return f"{self.kind}:{self.target}{tail}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RunSpec {self.canonical()}>"


def parse_runspec(text: str) -> RunSpec:
    """Parse ``kind:target[:key=value...]`` into a :class:`RunSpec`.

    Kinds: ``chaos`` (workloads ``stencil``/``samplesort``/``btmz``/
    ``fragile-reduce``; param ``seed``) and ``flows`` (programs
    ``spin``/``ring``/``pingpong``/``stencil``; params ``form``,
    ``ranks``, ``rounds``, ``cells``, ``steps``, ``seed``).
    """
    parts = text.strip().split(":")
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise QueryError(
            f"bad runspec {text!r}: want kind:target[:key=value...]")
    kind, target = parts[0], parts[1]
    if kind == "chaos":
        targets, keys = _CHAOS_TARGETS, _CHAOS_KEYS
    elif kind == "flows":
        targets, keys = _FLOWS_TARGETS, _FLOWS_KEYS
    else:
        raise QueryError(f"bad runspec {text!r}: unknown kind {kind!r} "
                         "(want chaos or flows)")
    if target not in targets:
        raise QueryError(f"bad runspec {text!r}: unknown {kind} target "
                         f"{target!r} (known: {', '.join(targets)})")
    params: Dict[str, Any] = {}
    for part in parts[2:]:
        key, eq, value = part.partition("=")
        if not eq or not key or not value:
            raise QueryError(
                f"bad runspec {text!r}: {part!r} is not key=value")
        if key not in keys:
            raise QueryError(f"bad runspec {text!r}: unknown param "
                             f"{key!r} (known: {', '.join(sorted(keys))})")
        if value.lstrip("-").isdigit():
            params[key] = int(value)
        else:
            params[key] = value
    form = params.get("form", "thread")
    if kind == "flows" and form not in _FORMS:
        raise QueryError(f"bad runspec {text!r}: form must be one of "
                         f"{', '.join(_FORMS)}")
    return RunSpec(kind, target, params)


def parse_timespec(text: str) -> Tuple[str, float]:
    """``"250000"`` → ("time", 250000.0); ``"@120"`` → ("events", 120)."""
    text = text.strip()
    if text.startswith("@"):
        try:
            return ("events", int(text[1:]))
        except ValueError:
            raise QueryError(
                f"bad timespec {text!r}: @N needs an integer event count")
    try:
        return ("time", float(text))
    except ValueError:
        raise QueryError(f"bad timespec {text!r}: want a virtual time in "
                         "ns, or @N for an event count")


# ---------------------------------------------------------------------------
# run builders (lazy imports: obs depends on the query engines)
# ---------------------------------------------------------------------------


def _chaos_schedule(spec: RunSpec):
    from repro.chaos.faults import FaultConfig, FaultSchedule
    return FaultSchedule.seeded(spec.params.get("seed", 0),
                                FaultConfig(**REPLAY_FAULT_RATES))


def _chaos_workload(spec: RunSpec):
    from repro.chaos.workloads import (BTMZChaosWorkload,
                                       FragileReduceWorkload,
                                       SampleSortChaosWorkload,
                                       StencilChaosWorkload)
    cls = {"stencil": StencilChaosWorkload,
           "samplesort": SampleSortChaosWorkload,
           "btmz": BTMZChaosWorkload,
           "fragile-reduce": FragileReduceWorkload}[spec.target]
    return cls()


def _flows_program(spec: RunSpec):
    from repro.flows.programs import (pingpong_program, ring_program,
                                      spin_program)
    from repro.flows.stencil import stencil_program
    p = spec.params
    target = spec.target
    if target == "spin":
        return spin_program(p.get("ranks", 4), p.get("rounds", 3))
    if target == "ring":
        return ring_program(p.get("ranks", 4), p.get("rounds", 3),
                            seed=p.get("seed", 0))
    if target == "pingpong":
        return pingpong_program(p.get("ranks", 4), p.get("rounds", 3),
                                seed=p.get("seed", 0))
    return stencil_program(p.get("ranks", 4), cells=p.get("cells", 8),
                           steps=p.get("steps", 4), seed=p.get("seed", 1))


def _build_flows_world(spec: RunSpec):
    """A populated, traced :class:`FlowWorld` for one flows runspec."""
    from repro.flows import compile_flow
    from repro.flows.runtime import FlowWorld
    from repro.kernel import EventKernel, KernelTracer
    program = _flows_program(spec)
    kernel = EventKernel(name="flows", causality=False)
    tracer = KernelTracer().attach(kernel)
    world = FlowWorld(program.ranks, kernel=kernel)
    form = spec.params.get("form", "thread")
    if form == "thread":
        world.spawn_threads(program.body)
    elif form == "compiled":
        world.spawn_compiled(compile_flow(program.body))
    else:
        if program.event_objects is None:
            raise QueryError(
                f"program {spec.target!r} has no event-object form")
        world.spawn_events(program.event_objects)
    return program, world, tracer


def _build_chaos_run(spec: RunSpec):
    """A built, fault-wired chaos runtime, exactly as the harness wires
    it (same build, same tracing, same injector) — so a partial replay
    sees the same event sequence as the recorded full run."""
    from repro.chaos.harness import wire_ampi_faults
    from repro.chaos.injector import FaultInjector
    workload = _chaos_workload(spec)
    rt, _check = workload.build()
    rt.cluster.enable_tracing()
    injector = FaultInjector(_chaos_schedule(spec))
    wire_ampi_faults(rt, injector)
    return rt


def run_recorded(spec: RunSpec) -> List[Dict[str, Any]]:
    """Re-execute ``spec`` to completion under a recording tracer.

    Returns the trace entries (the same JSONL schema ``dump`` writes).
    A chaos run goes through :func:`drive_ampi_chaos` with a
    :class:`RunObserver` attached — identical wiring to the chaos
    harness, so the trace matches what a chaos sweep would have
    recorded.  Flows runs go through a traced :class:`FlowWorld`.
    """
    if spec.kind == "chaos":
        from repro.chaos.harness import drive_ampi_chaos
        from repro.obs.collect import RunObserver
        holder: Dict[str, Any] = {}

        def observe(rt, ctx):
            holder["obs"] = RunObserver.for_ampi(rt).attach()

        drive_ampi_chaos(_chaos_workload(spec), _chaos_schedule(spec),
                         seed=spec.params.get("seed", 0),
                         observe=observe)
        obs = holder["obs"]
        obs.finalize()
        return obs.entries
    _program, world, tracer = _build_flows_world(spec)
    world.run()
    return tracer.entries


# ---------------------------------------------------------------------------
# bisect
# ---------------------------------------------------------------------------


def first_divergence(a: List[Dict[str, Any]], b: List[Dict[str, Any]],
                     ) -> Optional[Dict[str, Any]]:
    """First event index where two traces disagree, or ``None``.

    The result carries both records (``None`` for the side that ended
    early when one trace is a strict prefix of the other).
    """
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            return {"index": i, "a": a[i], "b": b[i]}
    if len(a) != len(b):
        return {"index": n,
                "a": a[n] if len(a) > n else None,
                "b": b[n] if len(b) > n else None}
    return None


# ---------------------------------------------------------------------------
# at: replay to a point, dump state
# ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Normalize runtime values for canonical JSON: tuples become
    lists, numpy arrays/scalars become Python numbers, dict keys become
    strings, anything else falls back to ``repr``."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    tolist = getattr(value, "tolist", None)
    if tolist is not None:
        return tolist()
    return repr(value)


def _event_record(ev, with_message: bool = False) -> Dict[str, Any]:
    rec: Dict[str, Any] = {"t": ev.time, "seq": ev.seq,
                           "category": ev.category or "",
                           "flow": ev.flow}
    if with_message and ev.category and ev.category.startswith("net.") \
            and ev.args:
        msg = ev.args[0]
        for attr, key in (("src", "src"), ("dst", "dst"),
                          ("size_bytes", "bytes"), ("send_time", "sent"),
                          ("tag", "tag")):
            v = getattr(msg, attr, None)
            if v is not None:
                rec[key] = _jsonable(v)
    return rec


def _ampi_state(spec: RunSpec, rt, at: Dict[str, Any],
                stopped_by: Optional[str]) -> Dict[str, Any]:
    db = rt.db
    placement = {str(r): pe for r, pe in sorted(db.placement().items())}
    per_pe: Dict[str, Any] = {}
    for i, proc in enumerate(rt.cluster.processors):
        sched = rt.schedulers[i]
        ready = sorted(
            rank for rank in (
                rt._rank_of_tid.get(ev.args[0].tid)
                for ev in sched.kernel.live_events() if ev.args)
            if rank is not None)
        resident = sorted(int(r) for r, pe in db.placement().items()
                          if pe == i)
        per_pe[str(i)] = {
            "clock_ns": proc.now,
            "busy_ns": proc.busy_ns,
            "failed": bool(proc.failed),
            "ready_ranks": ready,
            "resident_ranks": resident,
        }
    in_flight = [_event_record(ev, with_message=True)
                 for ev in rt.cluster.queue.kernel.live_events()]
    waiting = {str(r): _jsonable(list(wt))
               for r, wt in sorted(rt._waiting.items())}
    state: Dict[str, Any] = {
        "kind": "chaos",
        "runspec": spec.canonical(),
        "at": at,
        "time_ns": rt.cluster.queue.current_time,
        "net_events_processed": rt.cluster.queue.events_processed,
        "num_ranks": rt.num_ranks,
        "finished_ranks": rt._finished,
        "rank_placement": placement,
        "per_pe": per_pe,
        "in_flight": in_flight,
        "waiting": waiting,
        "lb_database": {
            "epoch": db.epoch,
            "pe_loads": db.pe_loads(),
            "imbalance": db.imbalance(),
        },
    }
    if stopped_by is not None:
        state["stopped_by"] = stopped_by
    return state


def _flow_state(spec: RunSpec, program, world,
                at: Dict[str, Any]) -> Dict[str, Any]:
    # Deliberately no ``form`` anywhere in the dump: the thread and
    # compiled forms of one program must produce byte-identical state
    # (the same contract their traces are pinned to).
    kernel = world.kernel
    return {
        "kind": "flows",
        "program": program.name,
        "ranks": world.ranks,
        "at": at,
        "events_processed": kernel.events_processed,
        "dispatches": world.dispatches,
        "finished": world.finished,
        "barrier_arrivals": world._barrier_count,
        "mailboxes": {
            str(r): [{"src": m.src, "tag": _jsonable(m.tag),
                      "data": _jsonable(m.data)}
                     for m in world._mailbox[r]]
            for r in range(world.ranks)},
        "waiting": {str(r): _jsonable(w and list(w))
                    for r, w in enumerate(world._waiting)},
        "pending_events": [_event_record(ev)
                           for ev in kernel.live_events()],
        "results": {str(r): _jsonable(v)
                    for r, v in sorted(world.results.items())},
    }


def replay_at(spec: RunSpec, timespec) -> Dict[str, Any]:
    """Replay ``spec`` up to ``timespec`` and dump reconstructed state.

    ``timespec`` is a string (see :func:`parse_timespec`) or an already
    parsed ``(kind, value)`` pair.  For a chaos run the bound applies to
    the cluster's network kernel — the replay stops with every event
    inside the bound delivered and local computation settled, so the
    dump's ``in_flight`` list is exactly the messages crossing the
    horizon.  For a flows run (all events at virtual time 0) an event
    count ``@N`` is the useful spigot.  The dump is deterministic:
    replaying the same spec to the same point yields identical bytes.
    """
    kind, value = (parse_timespec(timespec)
                   if isinstance(timespec, str) else timespec)
    if kind not in ("time", "events"):
        raise QueryError(f"bad timespec kind {kind!r}")
    at = {"kind": kind, "value": value}
    until = value if kind == "time" else None
    max_events = int(value) if kind == "events" else None
    if spec.kind == "flows":
        from repro.kernel import RunPolicy
        program, world, _tracer = _build_flows_world(spec)
        world.seed()
        world.kernel.run(RunPolicy(until=until, max_events=max_events))
        return _flow_state(spec, program, world, at)
    rt = _build_chaos_run(spec)
    stopped_by = None
    try:
        rt.run(until=until, max_net_events=max_events)
    except Exception as e:  # noqa: BLE001 - chaos runs legitimately fault
        stopped_by = f"{type(e).__name__}: {e}"
    return _ampi_state(spec, rt, at, stopped_by)
