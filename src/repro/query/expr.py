"""Expression AST for trace queries: evaluation and exact unparsing.

Nodes are small ``__slots__`` value objects with structural equality.
Two properties drive the design:

* **Total evaluation** — :meth:`Expr.evaluate` never raises on trace
  data.  A missing field is ``None``; arithmetic with ``None`` or
  mismatched types is ``None``; an ordering comparison on incomparable
  values is ``False``.  Queries over heterogeneous JSONL entries (the
  kernel trace mixes ``schedule``/``end``/``send``/``migration``
  schemas) therefore filter instead of crashing.
* **Round-trip unparsing** — :meth:`Expr.unparse` emits canonical text
  with minimal precedence parentheses such that
  ``parse(unparse(tree)) == tree`` (the parser property tests pin this
  as a fixed point).
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.errors import QueryError

__all__ = ["Expr", "Literal", "Field", "Unary", "Binary", "Call",
           "AGGREGATE_NAMES", "BUILTIN_NAMES"]

#: Aggregation functions — only valid in ``aggregate`` specs.
AGGREGATE_NAMES = frozenset({"count", "sum", "min", "max", "avg"})

#: Scalar builtins callable inside any expression.
BUILTIN_NAMES = frozenset({"has", "len", "abs", "int", "float",
                           "startswith"})

#: Binding strength, loosest to tightest; parenthesization in
#: :meth:`Expr.unparse` compares these.
_PREC = {"or": 1, "and": 2, "not": 3,
         "==": 4, "!=": 4, "<": 4, "<=": 4, ">": 4, ">=": 4,
         "+": 5, "-": 5, "*": 6, "/": 6, "%": 6, "neg": 7}

_COMPARISONS = frozenset({"==", "!=", "<", "<=", ">", ">="})


class Expr:
    """Base expression node; subclasses implement evaluate/unparse."""

    __slots__ = ()
    prec = 8  # atoms bind tightest

    def evaluate(self, entry: Dict[str, Any]) -> Any:
        raise NotImplementedError

    def unparse(self) -> str:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return (type(self) is type(other)
                and all(getattr(self, s) == getattr(other, s)
                        for s in self.__slots__))

    def __hash__(self) -> int:
        return hash((type(self).__name__,
                     tuple(repr(getattr(self, s)) for s in self.__slots__)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.unparse()!r}>"

    def _operand(self, child: "Expr", tight: bool = False) -> str:
        """Unparse ``child`` as an operand, parenthesizing when its
        binding is too loose (or equal, for right operands of
        left-associative operators)."""
        text = child.unparse()
        if child.prec < self.prec or (tight and child.prec == self.prec):
            return f"({text})"
        return text


class Literal(Expr):
    """A number, string, ``true``/``false``, or ``none``."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def evaluate(self, entry: Dict[str, Any]) -> Any:
        return self.value

    def unparse(self) -> str:
        v = self.value
        if v is None:
            return "none"
        if v is True:
            return "true"
        if v is False:
            return "false"
        if isinstance(v, str):
            escaped = v.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(v)


class Field(Expr):
    """Dotted access into an entry: ``category``, ``busy.0``, ``clock.1``.

    Missing keys and non-indexable intermediates evaluate to ``None``;
    an all-digit segment also tries list indexing, so traces that carry
    arrays stay reachable.
    """

    __slots__ = ("path",)

    def __init__(self, path: Tuple[str, ...]) -> None:
        self.path = tuple(path)

    def evaluate(self, entry: Dict[str, Any]) -> Any:
        value: Any = entry
        for key in self.path:
            if isinstance(value, dict):
                value = value.get(key)
            elif isinstance(value, (list, tuple)) and key.isdigit():
                idx = int(key)
                value = value[idx] if idx < len(value) else None
            else:
                return None
        return value

    def unparse(self) -> str:
        return ".".join(self.path)


class Unary(Expr):
    """``not x`` or ``-x``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr) -> None:
        self.op = op
        self.operand = operand

    @property
    def prec(self) -> int:  # type: ignore[override]
        return _PREC["not" if self.op == "not" else "neg"]

    def evaluate(self, entry: Dict[str, Any]) -> Any:
        v = self.operand.evaluate(entry)
        if self.op == "not":
            return not v
        if v is None:
            return None
        try:
            return -v
        except TypeError:
            return None

    def unparse(self) -> str:
        inner = self._operand(self.operand)
        return f"not {inner}" if self.op == "not" else f"-{inner}"


class Binary(Expr):
    """Left-associative binary operation (boolean, comparison, arithmetic)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        self.op = op
        self.left = left
        self.right = right

    @property
    def prec(self) -> int:  # type: ignore[override]
        return _PREC[self.op]

    def evaluate(self, entry: Dict[str, Any]) -> Any:
        op = self.op
        if op == "and":
            left = self.left.evaluate(entry)
            return self.right.evaluate(entry) if left else left
        if op == "or":
            left = self.left.evaluate(entry)
            return left if left else self.right.evaluate(entry)
        left = self.left.evaluate(entry)
        right = self.right.evaluate(entry)
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if left is None or right is None:
            # Ordering and arithmetic have no sensible answer against a
            # missing field: comparisons are False (the entry simply
            # does not match), arithmetic propagates the hole.
            return False if op in _COMPARISONS else None
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right
            if op == "%":
                return left % right
        except TypeError:
            return False if op in _COMPARISONS else None
        except ZeroDivisionError:
            return None
        raise QueryError(f"unknown operator {op!r}")  # pragma: no cover

    def unparse(self) -> str:
        # Comparisons do not chain in the grammar, so a comparison
        # operand of a comparison always needs explicit parentheses.
        tight_left = self.op in _COMPARISONS
        left = self._operand(self.left, tight=tight_left and
                             self.left.prec == self.prec)
        right = self._operand(self.right, tight=True)
        return f"{left} {self.op} {right}"


class Call(Expr):
    """A function call: scalar builtins anywhere, aggregates in specs.

    Evaluating an aggregate call as a scalar raises :class:`QueryError`
    — the aggregate engine interprets those nodes itself.
    """

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Tuple[Expr, ...]) -> None:
        self.name = name
        self.args = tuple(args)

    def evaluate(self, entry: Dict[str, Any]) -> Any:
        name = self.name
        if name in AGGREGATE_NAMES:
            raise QueryError(
                f"aggregate {name}() is only valid in an aggregate spec")
        args = [a.evaluate(entry) for a in self.args]
        if name == "has":
            return args[0] is not None
        if name == "startswith":
            return (isinstance(args[0], str) and isinstance(args[1], str)
                    and args[0].startswith(args[1]))
        if args[0] is None:
            return None
        try:
            if name == "len":
                return len(args[0])
            if name == "abs":
                return abs(args[0])
            if name == "int":
                return int(args[0])
            if name == "float":
                return float(args[0])
        except (TypeError, ValueError):
            return None
        raise QueryError(f"unknown function {name!r}")  # pragma: no cover

    def unparse(self) -> str:
        return f"{self.name}({', '.join(a.unparse() for a in self.args)})"
