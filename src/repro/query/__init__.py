"""EFILTER-style trace queries and time-travel over replayable runs.

The package splits into two halves that share one surface:

* **Query engines** (:mod:`repro.query.engines`) — ``filter``,
  ``aggregate``, and ``timeline`` over the JSONL traces every run
  emits, driven by a small hand-rolled expression language
  (:mod:`repro.query.lexer` / :mod:`repro.query.parser` /
  :mod:`repro.query.expr`).  The obs report's fixed views are canned
  queries through the same engines.
* **Time travel** (:mod:`repro.query.replay`) — because runs replay
  byte-identically from a runspec (workload + seed + form), a finished
  run can be "un-executed" by re-executing forward: ``bisect`` finds
  the first event where two runs diverge, ``at`` stops a replay at a
  virtual time or event count and dumps the reconstructed cluster
  state as canonical JSON.

``python -m repro.query`` (or ``tools/query.py``) exposes all five
verbs with migralint's 0/1/2 exit convention.
"""

from __future__ import annotations

from repro.errors import QueryError, QuerySyntaxError
from repro.query.engines import (aggregate_entries, canonical_json,
                                 compile_predicate, filter_entries,
                                 timeline_entries, trace_makespan,
                                 window_index)
from repro.query.expr import Binary, Call, Expr, Field, Literal, Unary
from repro.query.parser import AggregateSpec, parse, parse_aggregate
from repro.query.replay import (first_divergence, parse_runspec,
                                parse_timespec, replay_at, run_recorded)

__all__ = [
    "QueryError",
    "QuerySyntaxError",
    "parse",
    "parse_aggregate",
    "AggregateSpec",
    "Expr",
    "Literal",
    "Field",
    "Unary",
    "Binary",
    "Call",
    "compile_predicate",
    "filter_entries",
    "aggregate_entries",
    "timeline_entries",
    "window_index",
    "trace_makespan",
    "canonical_json",
    "parse_runspec",
    "parse_timespec",
    "run_recorded",
    "first_divergence",
    "replay_at",
]
