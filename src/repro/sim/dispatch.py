"""Tag-based message dispatch for simulated processors.

Several subsystems (the thread migrator, the Charm runtime, AMPI) need to
receive messages on the same processor.  :class:`TagDispatcher` installs
itself as the processor's message handler and routes each arriving message
to the handler registered for the message's tag prefix (the part of the tag
before the first ``:``).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import CommError
from repro.sim.network import Message
from repro.sim.processor import Processor

__all__ = ["TagDispatcher"]


class TagDispatcher:
    """Routes messages arriving at one processor by tag prefix."""

    def __init__(self, processor: Processor):
        self.processor = processor
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        processor.set_message_handler(self._dispatch)

    def register(self, prefix: str, handler: Callable[[Message], None]) -> None:
        """Register ``handler`` for messages whose tag prefix is ``prefix``."""
        if prefix in self._handlers:
            raise CommError(f"tag prefix {prefix!r} already registered "
                            f"on processor {self.processor.id}")
        self._handlers[prefix] = handler

    def unregister(self, prefix: str) -> None:
        """Remove a previously registered handler."""
        self._handlers.pop(prefix, None)

    def _dispatch(self, msg: Message) -> None:
        prefix = msg.tag.split(":", 1)[0]
        handler = self._handlers.get(prefix)
        if handler is None:
            raise CommError(
                f"no handler for tag {msg.tag!r} on processor "
                f"{self.processor.id} (registered: {sorted(self._handlers)})"
            )
        handler(msg)

    @staticmethod
    def of(processor: Processor) -> "TagDispatcher":
        """Get or create the dispatcher attached to ``processor``."""
        disp = getattr(processor, "_tag_dispatcher", None)
        if disp is None:
            disp = TagDispatcher(processor)
            processor._tag_dispatcher = disp  # type: ignore[attr-defined]
        return disp
