"""Discrete-event queue driving the simulated cluster."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import ReproError

__all__ = ["Event", "EventQueue"]


class Event:
    """One scheduled event: a callback to fire at a virtual time.

    Events compare by ``(time, seq)`` where ``seq`` is a global insertion
    counter, so simultaneous events fire in a deterministic FIFO order.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.1f} #{self.seq}{flag}>"


class EventQueue:
    """A time-ordered queue of :class:`Event` objects.

    The queue tracks the time of the last event popped; scheduling an event
    in the past (before that time) is an error — it would break causality in
    the conservative event-order execution the cluster uses.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.current_time = 0.0
        self.events_processed = 0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def empty(self) -> bool:
        """True when no live events remain."""
        return len(self) == 0

    def schedule(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run at virtual time ``time``."""
        if time < self.current_time:
            raise ReproError(
                f"cannot schedule event at {time} before current time "
                f"{self.current_time} (causality violation)"
            )
        ev = Event(time, next(self._counter), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Pop and run the next live event.  Returns False if queue empty."""
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self.current_time = ev.time
        self.events_processed += 1
        ev.fn(*ev.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Parameters
        ----------
        until:
            Stop before running any event later than this time.
        max_events:
            Stop after this many events (guards against runaway loops).

        Returns the number of events processed by this call.
        """
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            t = self.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                break
            self.step()
            processed += 1
        return processed

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
