"""Discrete-event queue driving the simulated cluster.

Since the run-loop unification this module is a thin façade: the actual
time-ordered dispatch, cancellation bookkeeping, stop conditions, and
instrumentation all live in :class:`repro.kernel.EventKernel`.  The
façade preserves the historical ``EventQueue`` surface (``schedule`` /
``peek_time()`` / ``step`` / ``run(until, max_events)``) that the
cluster and a decade of tests speak, and exposes the kernel itself as
:attr:`EventQueue.kernel` for hook-bus subscribers (tracers, the chaos
injector) and :class:`~repro.kernel.RunPolicy` users.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.kernel import EventKernel, KernelEvent, RunPolicy

__all__ = ["Event", "EventQueue"]

#: The event type is the kernel's; re-exported under its historical name.
Event = KernelEvent


class EventQueue:
    """A time-ordered queue of :class:`Event` objects (kernel façade).

    The queue tracks the time of the last event popped; scheduling an event
    in the past (before that time) is an error — it would break causality in
    the conservative event-order execution the cluster uses.
    """

    __slots__ = ("kernel",)

    def __init__(self) -> None:
        self.kernel = EventKernel(name="sim", causality=True)

    @property
    def hooks(self):
        """The kernel's :class:`~repro.kernel.HookBus` — the sanctioned
        interception point for tracing and fault injection."""
        return self.kernel.hooks

    @property
    def current_time(self) -> float:
        return self.kernel.current_time

    @current_time.setter
    def current_time(self, value: float) -> None:
        self.kernel.current_time = value

    @property
    def events_processed(self) -> int:
        return self.kernel.events_processed

    def __len__(self) -> int:
        return len(self.kernel)

    @property
    def empty(self) -> bool:
        """True when no live events remain (O(1))."""
        return self.kernel.empty

    def schedule(self, time: float, fn: Callable[..., Any], *args: Any,
                 category: str = "", flow: Optional[str] = None) -> Event:
        """Schedule ``fn(*args)`` to run at virtual time ``time``."""
        return self.kernel.schedule(time, fn, *args,
                                    category=category, flow=flow)

    def post(self, time: float, fn: Callable[..., Any], args: tuple = (),
             category: str = "", flow: Optional[str] = None) -> list:
        """Handle-free fast scheduling (see :meth:`EventKernel.post`)."""
        return self.kernel.post(time, fn, args, category, flow)

    def post_batch(self, times, fn: Callable[..., Any], args: tuple = (),
                   category: str = "", flow: Optional[str] = None,
                   args_list: Optional[list] = None,
                   flows: Optional[list] = None,
                   fns: Optional[list] = None) -> list:
        """Bulk handle-free scheduling (see :meth:`EventKernel.post_batch`)."""
        return self.kernel.post_batch(times, fn, args, category, flow,
                                      args_list=args_list, flows=flows,
                                      fns=fns)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None."""
        return self.kernel.peek_time()

    def step(self) -> bool:
        """Pop and run the next live event.  Returns False if queue empty."""
        return self.kernel.step()

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            policy: Optional[RunPolicy] = None) -> int:
        """Run events in order.

        Parameters
        ----------
        until:
            Stop before running any event later than this time.
        max_events:
            Stop after this many events (guards against runaway loops).
        policy:
            A full :class:`~repro.kernel.RunPolicy`; overrides the two
            shorthands when given.

        Returns the number of events processed by this call.
        """
        if policy is None:
            policy = RunPolicy(until=until, max_events=max_events)
        return self.kernel.run(policy)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventQueue {self.kernel!r}>"
