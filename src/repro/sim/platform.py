"""Platform profiles for the paper's evaluation machines.

Each :class:`PlatformProfile` bundles:

* machine parameters (word size, clock rate, page size, physical memory);
* **portability feature flags** from which Table 1's Yes/Maybe/No matrix is
  *derived*, not transcribed: whether ``mmap`` exists, whether a
  Windows-style mapping equivalent exists, whether the system stack base is
  fixed across nodes, whether our QuickThreads-based stack-copy
  implementation was ported, whether a microkernel extension could support
  remapping (the Blue Gene/L case, Section 3.4.4);
* **scheduling cost constants** driving the Figures 4–8 context-switch
  curves.  Kernel mechanisms pay syscall entry/exit plus a run-queue term
  (linear in the number of runnable flows, the pre-O(1)-scheduler
  behaviour); all mechanisms pay a saturating cache-pollution term as the
  set of live flows outgrows the cache; the IBM SP and Alpha "ignore
  repeated sched_yield" quirk the paper calls out in Figures 7–8 is a flag;
* **practical limits** reproducing Table 2;
* a :class:`~repro.vm.costs.MemoryCostModel` driving Figure 9.

Calibration note: constants are chosen to match the *order of magnitude and
shape* of the paper's plots (user-level threads fastest on most machines,
microsecond-scale kernel switches, ~4 µs memory-aliasing switches on Linux
x86), not to match exact 2006 wall-clock numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.vm.costs import MemoryCostModel
from repro.vm.layout import AddressSpaceLayout, GB, MB

__all__ = ["PlatformProfile", "PLATFORMS", "get_platform"]


@dataclass(frozen=True)
class PlatformProfile:
    """Description of one simulated machine model (see module docstring)."""

    name: str
    description: str
    word_bits: int
    cpu_ghz: float
    page_size: int = 4096
    physical_memory_bytes: int = 1 * GB

    # -- portability feature flags (Table 1 inputs) ------------------------
    has_mmap: bool = True
    mmap_equivalent: bool = False          # Windows MapViewOfFileEx
    fixed_stack_base: bool = True          # no stack-address randomization
    quickthreads_port: bool = True         # our stack-copy impl exists here
    microkernel: bool = False              # BG/L, ASCI Red style
    microkernel_remap_extension: bool = False  # BG/L heap-over-stack remap
    isomalloc_impl: bool = True            # we have run isomalloc here
    memalias_impl: bool = True             # we have run memory aliasing here

    # -- context-switch cost constants (ns) --------------------------------
    syscall_ns: float = 300.0
    process_switch_ns: float = 1_500.0     # kernel work beyond the syscall
    kthread_switch_ns: float = 1_200.0
    uthread_switch_ns: float = 350.0       # Cth: register swap + scheduler
    ampi_overhead_ns: float = 450.0        # GOT swap + AMPI scheduler layer
    event_dispatch_ns: float = 120.0       # event-driven object dispatch
    runqueue_ns_per_flow: float = 0.0      # O(n) kernel scheduler coefficient
    cache_penalty_ns: float = 300.0        # saturating cache-pollution ceiling
    cache_flows_scale: float = 2_000.0     # flows at which penalty half-saturates
    tlb_flush_ns: float = 500.0            # paid by address-space switches
    ignores_repeated_sched_yield: bool = False
    sched_yield_noop_ns: float = 250.0     # quirk: cost of the ignored yield

    # -- creation cost constants (ns) ---------------------------------------
    fork_ns: float = 150_000.0             # beyond address-space copying
    pthread_create_ns: float = 25_000.0
    uthread_create_ns: float = 2_500.0     # beyond the stack mmap

    # -- practical limits (Table 2); None means "no practical limit" -------
    max_processes: Optional[int] = None
    max_kthreads: Optional[int] = None
    max_uthreads: Optional[int] = None     # usually memory-bound -> None

    # -- memory system -------------------------------------------------------
    mem: MemoryCostModel = field(default_factory=MemoryCostModel)

    def layout(self) -> AddressSpaceLayout:
        """Build the address-space layout this machine model uses."""
        if self.word_bits == 32:
            return AddressSpaceLayout.small32(self.page_size)
        return AddressSpaceLayout.large64(self.page_size)

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert CPU cycles to nanoseconds at this machine's clock rate."""
        return cycles / self.cpu_ghz

    def with_overrides(self, **kwargs) -> "PlatformProfile":
        """Return a copy with some fields replaced (scenario building)."""
        return replace(self, **kwargs)

    # -- Table 1 derivation --------------------------------------------------

    def stack_copy_support(self) -> str:
        """Portability verdict for stack-copying threads on this platform."""
        if not self.fixed_stack_base:
            return "No"
        return "Yes" if self.quickthreads_port else "Maybe"

    def isomalloc_support(self) -> str:
        """Portability verdict for isomalloc threads on this platform."""
        if not (self.has_mmap or self.mmap_equivalent):
            return "No"
        return "Yes" if (self.has_mmap and self.isomalloc_impl) else "Maybe"

    def memory_alias_support(self) -> str:
        """Portability verdict for memory-aliasing stacks on this platform."""
        if self.has_mmap and self.memalias_impl:
            return "Yes"
        if self.has_mmap or self.mmap_equivalent or self.microkernel_remap_extension:
            return "Maybe"
        return "No"


def _mem(bw: float, syscall: float, fixed: float, per_page: float,
         tlb: float) -> MemoryCostModel:
    return MemoryCostModel(
        memcpy_bytes_per_ns=bw,
        syscall_ns=syscall,
        mmap_fixed_ns=fixed,
        per_page_map_ns=per_page,
        tlb_flush_ns=tlb,
    )


#: All built-in machine models, keyed by short name.  Written only at
#: import time by the ``_register`` calls below (frozen PlatformProfile
#: values, never touched per run), so it cannot leak one run's state
#: into the next — the hazard OBS001 exists to catch.
# migralint: disable=OBS001
PLATFORMS: Dict[str, PlatformProfile] = {}


def _register(p: PlatformProfile) -> PlatformProfile:
    PLATFORMS[p.name] = p
    return p


#: Figure 4 machine: 1.6 GHz Pentium M, Linux 2.4.25 / Red Hat 9.
#: The 2.4 kernel's O(n) scheduler gives kernel flows their growth with n;
#: RH9's default thread limits give Table 2's "250 pthreads".
LINUX_X86 = _register(PlatformProfile(
    name="linux_x86",
    description="x86 laptop, 1.6 GHz Pentium M, Linux 2.4.25/glibc 2.3.3 (Red Hat 9)",
    word_bits=32,
    cpu_ghz=1.6,
    physical_memory_bytes=1 * GB,
    syscall_ns=350.0,
    process_switch_ns=2_100.0,
    kthread_switch_ns=1_500.0,
    uthread_switch_ns=380.0,
    ampi_overhead_ns=420.0,
    runqueue_ns_per_flow=0.9,
    cache_penalty_ns=260.0,
    cache_flows_scale=3_000.0,
    max_processes=8_000,
    max_kthreads=250,
    max_uthreads=None,
    mem=_mem(bw=2.0, syscall=1_500.0, fixed=1_400.0, per_page=8.0, tlb=600.0),
))

#: Figure 5 machine: Turing cluster node, 2 GHz PowerPC G5, Mac OS X.
MAC_G5 = _register(PlatformProfile(
    name="mac_g5",
    description="Apple G5, 2 GHz PowerPC 970, Mac OS X (Turing cluster, UIUC)",
    word_bits=64,
    cpu_ghz=2.0,
    physical_memory_bytes=4 * GB,
    quickthreads_port=False,      # Table 1: stack copy "Maybe" on Mac OS X
    syscall_ns=800.0,
    process_switch_ns=5_200.0,
    kthread_switch_ns=3_300.0,
    uthread_switch_ns=450.0,
    ampi_overhead_ns=500.0,
    runqueue_ns_per_flow=0.35,
    cache_penalty_ns=320.0,
    cache_flows_scale=2_500.0,
    max_processes=500,
    max_kthreads=7_000,
    max_uthreads=None,
    mem=_mem(bw=3.0, syscall=2_000.0, fixed=1_800.0, per_page=10.0, tlb=700.0),
))

#: Figure 6 machine: 700 MHz SunBlade 1000, Solaris 9.
SOLARIS = _register(PlatformProfile(
    name="solaris",
    description="SunBlade 1000 workstation, 700 MHz UltraSPARC III, Solaris 9",
    word_bits=64,
    cpu_ghz=0.7,
    physical_memory_bytes=1 * GB,
    syscall_ns=900.0,
    process_switch_ns=11_000.0,
    kthread_switch_ns=6_000.0,   # Solaris LWPs: threads ~ processes in cost
    uthread_switch_ns=1_250.0,
    ampi_overhead_ns=1_300.0,
    runqueue_ns_per_flow=0.5,
    cache_penalty_ns=900.0,
    cache_flows_scale=2_000.0,
    max_processes=25_000,
    max_kthreads=3_000,
    max_uthreads=None,
    mem=_mem(bw=0.9, syscall=2_500.0, fixed=2_200.0, per_page=20.0, tlb=900.0),
))

#: Figure 7 machine: one 1.3 GHz Power4 "Regatta" node of cu.ncsa, AIX 5.1.
#: AIX ignores repeated sched_yield, so process/kthread curves are
#: artificially low — the paper flags this explicitly.
IBM_SP = _register(PlatformProfile(
    name="ibm_sp",
    description="IBM SP, 1.3 GHz POWER4 Regatta node, AIX 5.1 (cu.ncsa.uiuc.edu)",
    word_bits=64,
    cpu_ghz=1.3,
    physical_memory_bytes=4 * GB,
    syscall_ns=600.0,
    process_switch_ns=4_000.0,
    kthread_switch_ns=2_600.0,
    uthread_switch_ns=900.0,
    ampi_overhead_ns=900.0,
    runqueue_ns_per_flow=0.4,
    cache_penalty_ns=2_200.0,     # Cth growth is pronounced on this machine
    cache_flows_scale=800.0,
    ignores_repeated_sched_yield=True,
    sched_yield_noop_ns=280.0,
    max_processes=100,            # Table 2: per-user process limit was 100
    max_kthreads=2_000,
    max_uthreads=15_000,          # Table 2: memory-bound at ~15000
    mem=_mem(bw=2.5, syscall=1_800.0, fixed=1_600.0, per_page=12.0, tlb=800.0),
))

#: Figure 8 machine: one 1 GHz ES45 AlphaServer node of lemieux.psc.edu.
ALPHA = _register(PlatformProfile(
    name="alpha",
    description="HP/Compaq AlphaServer ES45, 1 GHz EV68, Tru64 Unix (lemieux.psc.edu)",
    word_bits=64,
    cpu_ghz=1.0,
    physical_memory_bytes=4 * GB,
    syscall_ns=700.0,
    process_switch_ns=5_000.0,
    kthread_switch_ns=3_000.0,
    uthread_switch_ns=1_350.0,
    ampi_overhead_ns=800.0,
    runqueue_ns_per_flow=0.3,
    cache_penalty_ns=700.0,
    cache_flows_scale=2_000.0,
    ignores_repeated_sched_yield=True,
    sched_yield_noop_ns=380.0,
    max_processes=1_000,
    max_kthreads=None,            # Table 2: "90000+"
    max_uthreads=None,
    mem=_mem(bw=2.0, syscall=2_000.0, fixed=1_800.0, per_page=15.0, tlb=850.0),
))

#: Table 2 column: IA-64 (Itanium) — generous limits, no QuickThreads port.
IA64 = _register(PlatformProfile(
    name="ia64",
    description="Itanium 2 cluster node, Linux (IA-64)",
    word_bits=64,
    cpu_ghz=1.5,
    physical_memory_bytes=4 * GB,
    quickthreads_port=False,      # Table 1: stack copy "Maybe" on IA64
    syscall_ns=500.0,
    process_switch_ns=2_800.0,
    kthread_switch_ns=1_900.0,
    uthread_switch_ns=600.0,
    ampi_overhead_ns=600.0,
    runqueue_ns_per_flow=0.2,
    max_processes=None,           # Table 2: "50000+"
    max_kthreads=None,            # Table 2: "30000+"
    max_uthreads=None,
    mem=_mem(bw=4.0, syscall=1_200.0, fixed=1_100.0, per_page=9.0, tlb=650.0),
))

#: Figure 10 machine: 2.2 GHz Athlon64 (x86-64), used for the minimal-swap
#: measurement (16 ns in 32-bit mode, 18 ns in 64-bit mode).
OPTERON = _register(PlatformProfile(
    name="opteron",
    description="2.2 GHz Athlon64/Opteron, x86-64 Linux",
    word_bits=64,
    cpu_ghz=2.2,
    physical_memory_bytes=4 * GB,
    syscall_ns=250.0,
    process_switch_ns=1_600.0,
    kthread_switch_ns=1_100.0,
    uthread_switch_ns=280.0,
    ampi_overhead_ns=350.0,
    runqueue_ns_per_flow=0.2,
    max_processes=30_000,
    max_kthreads=30_000,
    max_uthreads=None,
    mem=_mem(bw=3.5, syscall=900.0, fixed=900.0, per_page=7.0, tlb=500.0),
))

#: Figure 12 machine: NCSA Tungsten — Dell PowerEdge 1750 nodes with two
#: 3.2 GHz Xeons, Red Hat Linux, Myrinet (paper Section 4.5).  32-bit
#: like the laptop profile but a much faster clock and a 2.4-era kernel.
TUNGSTEN = _register(PlatformProfile(
    name="tungsten_xeon",
    description="NCSA Tungsten: Dell PowerEdge 1750, 2x 3.2 GHz Xeon, "
                "Red Hat Linux, Myrinet",
    word_bits=32,
    cpu_ghz=3.2,
    physical_memory_bytes=3 * GB,
    syscall_ns=250.0,
    process_switch_ns=1_400.0,
    kthread_switch_ns=1_000.0,
    uthread_switch_ns=220.0,
    ampi_overhead_ns=260.0,
    runqueue_ns_per_flow=0.6,
    cache_penalty_ns=200.0,
    cache_flows_scale=3_000.0,
    max_processes=8_000,
    max_kthreads=1_000,
    max_uthreads=None,
    mem=_mem(bw=3.2, syscall=900.0, fixed=900.0, per_page=6.0, tlb=450.0),
))

#: Blue Gene/L compute node: 32-bit PowerPC 440, microkernel, no mmap,
#: no fork/system/exec, no pthreads (paper Sections 2.1-2.2, 3.4.4).
BLUEGENE_L = _register(PlatformProfile(
    name="bluegene_l",
    description="Blue Gene/L compute node, 700 MHz PowerPC 440, CNK microkernel",
    word_bits=32,
    cpu_ghz=0.7,
    physical_memory_bytes=512 * MB,
    has_mmap=False,
    microkernel=True,
    microkernel_remap_extension=True,  # our proposed CNK extension
    quickthreads_port=False,
    isomalloc_impl=False,
    memalias_impl=False,
    syscall_ns=400.0,
    uthread_switch_ns=1_000.0,
    ampi_overhead_ns=900.0,
    max_processes=1,              # one process per compute node
    max_kthreads=0,               # no pthreads at all
    max_uthreads=None,
    mem=_mem(bw=1.0, syscall=1_500.0, fixed=1_500.0, per_page=20.0, tlb=800.0),
))

#: Windows: no mmap but MapViewOfFileEx is an equivalent; stack copy works.
WINDOWS = _register(PlatformProfile(
    name="windows",
    description="x86 Windows (Win32), 2 GHz class",
    word_bits=32,
    cpu_ghz=2.0,
    physical_memory_bytes=2 * GB,
    has_mmap=False,
    mmap_equivalent=True,
    isomalloc_impl=False,
    memalias_impl=False,
    syscall_ns=600.0,
    process_switch_ns=4_500.0,
    kthread_switch_ns=2_400.0,
    uthread_switch_ns=500.0,
    ampi_overhead_ns=600.0,
    max_processes=2_000,
    max_kthreads=2_000,
    max_uthreads=None,
    mem=_mem(bw=2.0, syscall=2_200.0, fixed=2_000.0, per_page=15.0, tlb=700.0),
))


def get_platform(name: str) -> PlatformProfile:
    """Look up a built-in platform profile by name.

    Raises
    ------
    KeyError
        With the list of known names, if ``name`` is unknown.
    """
    try:
        return PLATFORMS[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORMS))
        raise KeyError(f"unknown platform {name!r}; known: {known}") from None
