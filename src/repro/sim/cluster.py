"""The simulated cluster: processors + network + event queue."""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import CommError, ReproError
from repro.kernel import RunPolicy
from repro.sim.event import Event, EventQueue
from repro.sim.network import Message, Network
from repro.sim.platform import PlatformProfile, get_platform
from repro.sim.processor import Processor

__all__ = ["Cluster"]


class Cluster:
    """A distributed-memory machine of ``n`` simulated processors.

    Execution model: a single global :class:`~repro.sim.event.EventQueue`
    holds message arrivals and timers, processed in virtual-time order.
    Handling an event on processor *P* pulls *P*'s local clock up to the
    event time, then runs the handler, which charges local work and may
    send further messages stamped with *P*'s advancing local clock.  This
    is a conservative parallel-discrete-event execution — fittingly, the
    same structure BigSim itself uses (paper Section 4.4).
    """

    def __init__(self, num_processors: int,
                 platform: PlatformProfile | str = "linux_x86",
                 network: Optional[Network] = None):
        if num_processors <= 0:
            raise ReproError("cluster needs at least one processor")
        if isinstance(platform, str):
            platform = get_platform(platform)
        self.platform = platform
        self.network = network or Network()
        self.queue = EventQueue()
        self.processors: List[Processor] = [
            Processor(i, platform, cluster=self) for i in range(num_processors)
        ]
        #: When tracing is enabled, every send appends
        #: (send_time, src, dst, tag, size_bytes) here.
        self.message_trace: Optional[List[tuple]] = None
        #: Per-cluster message-id counter: ids restart at 1 for every
        #: cluster, so identical runs in one host process get identical
        #: ids (replay/fingerprint comparisons may key on msg_id).
        self._next_msg_id = 0
        #: Interned instrumentation labels: every send used to build
        #: fresh ``f"net.{tag}"`` / ``f"pe{dst}"`` strings, a measurable
        #: slice of the per-message cost.  Tag and destination spaces
        #: are tiny, so both caches stay a handful of entries.
        self._net_categories: dict = {}
        self._flow_labels: dict = {}

    def __len__(self) -> int:
        return len(self.processors)

    def __getitem__(self, proc_id: int) -> Processor:
        return self.processors[proc_id]

    # -- messaging --------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, size_bytes: int,
             tag: str = "") -> Message:
        """Send a message; schedules its arrival on the event queue."""
        if not 0 <= dst < len(self.processors):
            raise ReproError(f"bad destination processor {dst}")
        sender = self.processors[src]
        if sender.failed:
            raise CommError(f"failed processor {src} cannot send")
        if self.processors[dst].failed:
            raise CommError(f"send to failed processor {dst} "
                            f"(tag={tag!r})")
        sender.charge(self.network.per_message_cpu_ns)
        self._next_msg_id += 1
        msg = Message(src=src, dst=dst, payload=payload,
                      size_bytes=size_bytes, tag=tag,
                      send_time=sender.now, msg_id=self._next_msg_id)
        arrival = self.network.delivery_time(sender.now, size_bytes,
                                             src=src, dst=dst)
        # Never schedule into the queue's past: a processor whose local
        # clock lags global event time can still legally send.
        arrival = max(arrival, self.queue.current_time)
        sender.messages_sent += 1
        sender.bytes_sent += size_bytes
        if self.message_trace is not None:
            self.message_trace.append((msg.send_time, src, dst, tag,
                                       size_bytes))
        receiver = self.processors[dst]
        # The kernel's "net.send" filter channel is the sanctioned
        # interception point for the delivery schedule: subscribers (the
        # chaos injector) may drop, delay, duplicate, or reorder the
        # arrivals deterministically.  Unsubscribed, the list passes
        # through untouched.
        arrivals = self.queue.hooks.filter("net.send", [arrival], msg=msg)
        category = self._net_categories.get(tag)
        if category is None:
            category = self._net_categories[tag] = f"net.{tag or 'raw'}"
        flow = self._flow_labels.get(dst)
        if flow is None:
            flow = self._flow_labels[dst] = f"pe{dst}"
        cur = self.queue.current_time
        deliver = receiver.deliver
        post = self.queue.post
        for t in arrivals:
            if t < cur:
                t = cur
            post(t, deliver, (msg, t), category, flow)
        return msg

    def send_batch(self, src: int, items, tag: str = "") -> List[Message]:
        """Send several messages from ``src``, posting arrivals in bulk.

        ``items`` is a sequence of ``(dst, payload, size_bytes)``
        triples.  Per-message bookkeeping — failure checks, sender
        charge, message ids, delivery times, the chaos ``net.send``
        filter — runs in exactly the order the equivalent :meth:`send`
        loop would (so send timestamps, message ids, and injected-chaos
        RNG draws are byte-identical), but all arrival events enter the
        kernel through one :meth:`~repro.sim.event.EventQueue.post_batch`
        call, paying batch ingress instead of per-event ``post`` cost.
        Returns the messages in send order.
        """
        items = items if isinstance(items, list) else list(items)
        if len(items) == 1:
            dst, payload, size_bytes = items[0]
            return [self.send(src, dst, payload, size_bytes, tag=tag)]
        sender = self.processors[src]
        if sender.failed:
            # Nothing dispatches during the loop, so the sender cannot
            # fail partway through: check once.
            raise CommError(f"failed processor {src} cannot send")
        procs = self.processors
        nprocs = len(procs)
        per_msg_ns = self.network.per_message_cpu_ns
        delivery_time = self.network.delivery_time
        charge = sender.charge
        trace = self.message_trace
        hook_filter = self.queue.hooks.filter
        flow_labels = self._flow_labels
        cur = self.queue.current_time  # frozen for the whole loop
        msg_id = self._next_msg_id
        times: List[float] = []
        fns: List[Callable[..., Any]] = []
        args_list: List[tuple] = []
        flows: List[str] = []
        msgs: List[Message] = []
        for dst, payload, size_bytes in items:
            if not 0 <= dst < nprocs:
                raise ReproError(f"bad destination processor {dst}")
            receiver = procs[dst]
            if receiver.failed:
                raise CommError(f"send to failed processor {dst} "
                                f"(tag={tag!r})")
            charge(per_msg_ns)
            msg_id += 1
            msg = Message(src=src, dst=dst, payload=payload,
                          size_bytes=size_bytes, tag=tag,
                          send_time=sender.now, msg_id=msg_id)
            arrival = delivery_time(sender.now, size_bytes, src=src,
                                    dst=dst)
            if arrival < cur:
                arrival = cur
            sender.messages_sent += 1
            sender.bytes_sent += size_bytes
            if trace is not None:
                trace.append((msg.send_time, src, dst, tag, size_bytes))
            arrivals = hook_filter("net.send", [arrival], msg=msg)
            flow = flow_labels.get(dst)
            if flow is None:
                flow = flow_labels[dst] = f"pe{dst}"
            deliver = receiver.deliver
            for t in arrivals:
                if t < cur:
                    t = cur
                times.append(t)
                fns.append(deliver)
                args_list.append((msg, t))
                flows.append(flow)
            msgs.append(msg)
        self._next_msg_id = msg_id
        category = self._net_categories.get(tag)
        if category is None:
            category = self._net_categories[tag] = f"net.{tag or 'raw'}"
        self.queue.post_batch(times, None, category=category,
                              args_list=args_list, flows=flows, fns=fns)
        return msgs

    def at(self, proc_id: int, time: float, fn: Callable[..., Any],
           *args: Any, category: str = "timer",
           flow: Optional[str] = None) -> Event:
        """Schedule ``fn(*args)`` on processor ``proc_id`` at virtual ``time``."""
        proc = self.processors[proc_id]

        def fire():
            proc.clock.advance_to(time)
            fn(*args)

        fire.__qualname__ = getattr(fn, "__qualname__", "Cluster.at.fire")
        return self.queue.schedule(max(time, self.queue.current_time), fire,
                                   category=category,
                                   flow=flow or f"pe{proc_id}")

    def after(self, proc_id: int, delay_ns: float, fn: Callable[..., Any],
              *args: Any, category: str = "timer",
              flow: Optional[str] = None) -> Event:
        """Schedule ``fn`` on ``proc_id`` after ``delay_ns`` of its local time."""
        proc = self.processors[proc_id]
        return self.at(proc_id, proc.now + delay_ns, fn, *args,
                       category=category, flow=flow)

    def post_after_batch(self, proc_id: int, delay_ns: float,
                         fn: Callable[..., Any], args_list,
                         category: str = "timer",
                         flows: Optional[List[str]] = None) -> list:
        """Schedule ``fn(*args)`` for every ``args`` in ``args_list`` on
        ``proc_id``, all after the same ``delay_ns`` of its local time.

        The batch analogue of calling :meth:`after` once per entry with
        no work charged in between (which is when the per-call times
        would coincide anyway): one shared trampoline advances the
        processor clock exactly like :meth:`at`'s closure and keeps the
        wrapped function's ``__qualname__`` so kernel traces show the
        same dispatch site, while all events enter via ``post_batch``.
        ``flows`` optionally labels each event; default ``pe<proc_id>``.
        """
        proc = self.processors[proc_id]
        time = proc.now + delay_ns

        def fire(*args):
            proc.clock.advance_to(time)
            fn(*args)

        fire.__qualname__ = getattr(fn, "__qualname__",
                                    "Cluster.post_after_batch.fire")
        t = max(time, self.queue.current_time)
        args_list = list(args_list)
        if flows is None:
            flow = self._flow_labels.get(proc_id)
            if flow is None:
                flow = self._flow_labels[proc_id] = f"pe{proc_id}"
            flows = [flow] * len(args_list)
        return self.queue.post_batch([t] * len(args_list), fire,
                                     category=category,
                                     args_list=args_list, flows=flows)

    # -- execution ----------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None,
            policy: Optional[RunPolicy] = None) -> int:
        """Drain the event queue; returns the number of events processed."""
        return self.queue.run(until=until, max_events=max_events,
                              policy=policy)

    def enable_tracing(self) -> None:
        """Record every message send into :attr:`message_trace` (debugging).

        The trace is (send_time, src, dst, tag, size_bytes) tuples in send
        order; :meth:`format_trace` renders it.
        """
        if self.message_trace is None:
            self.message_trace = []

    def format_trace(self, limit: int = 50) -> str:
        """Render the last ``limit`` traced messages as aligned text."""
        if not self.message_trace:
            return "(no messages traced)"
        lines = ["   time(us)  src -> dst  bytes  tag"]
        for t, src, dst, tag, size in self.message_trace[-limit:]:
            lines.append(f"{t / 1000:11.2f}  {src:3d} -> {dst:3d}  "
                         f"{size:5d}  {tag}")
        return "\n".join(lines)

    @property
    def time(self) -> float:
        """Global event time (time of the last processed event)."""
        return self.queue.current_time

    @property
    def makespan(self) -> float:
        """Latest local clock across all processors (completion time)."""
        return max(p.now for p in self.processors)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Cluster {len(self.processors)}x{self.platform.name} "
                f"t={self.time:.0f}ns>")
