"""Interconnect topologies: hop counts for the cluster network.

The paper's machines range from Myrinet Linux clusters (Figure 12's
Tungsten) to the Blue Gene/L 3-D torus whose simulation motivates BigSim;
the group's companion work simulates interconnection networks explicitly
(reference [40]).  This module provides hop-count models that the
:class:`~repro.sim.network.Network` can use to charge per-hop latency:

* :class:`FullyConnected` — one hop between any pair (the default,
  crossbar-like model);
* :class:`Torus3D` — wrap-around Manhattan distance on a 3-D torus
  (Blue Gene-class);
* :class:`FatTree` — two-level switch hierarchy: 2 hops within a leaf
  switch, 4 hops across (Myrinet/InfiniBand-class Clos fabric).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ReproError

__all__ = ["Topology", "FullyConnected", "Torus3D", "FatTree"]


class Topology(ABC):
    """Maps a processor pair to a hop count."""

    @abstractmethod
    def hops(self, src: int, dst: int) -> int:
        """Network hops between two processors (0 when src == dst)."""

    @abstractmethod
    def size(self) -> int:
        """Number of processors the topology addresses."""

    def diameter(self) -> int:
        """Maximum hops over all pairs (brute force; small machines)."""
        n = self.size()
        return max(self.hops(a, b) for a in range(n) for b in range(n))


@dataclass(frozen=True)
class FullyConnected(Topology):
    """Every pair is one hop apart (ideal crossbar)."""

    n: int

    def hops(self, src: int, dst: int) -> int:
        self._check(src, dst)
        return 0 if src == dst else 1

    def size(self) -> int:
        return self.n

    def _check(self, src: int, dst: int) -> None:
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise ReproError(f"bad processor pair ({src}, {dst})")


@dataclass(frozen=True)
class Torus3D(Topology):
    """3-D torus with wrap-around links (Blue Gene-class)."""

    dims: Tuple[int, int, int]

    def coords(self, proc: int) -> Tuple[int, int, int]:
        """Processor id -> (x, y, z)."""
        x, y, z = self.dims
        if not 0 <= proc < x * y * z:
            raise ReproError(f"bad processor {proc} for torus {self.dims}")
        return proc % x, (proc // x) % y, proc // (x * y)

    def hops(self, src: int, dst: int) -> int:
        sx, sy, sz = self.coords(src)
        dx, dy, dz = self.coords(dst)
        out = 0
        for s, d, n in ((sx, dx, self.dims[0]), (sy, dy, self.dims[1]),
                        (sz, dz, self.dims[2])):
            delta = abs(s - d)
            out += min(delta, n - delta)        # wrap-around shortcut
        return out

    def size(self) -> int:
        x, y, z = self.dims
        return x * y * z


@dataclass(frozen=True)
class FatTree(Topology):
    """Two-level fat tree: leaf switches of ``radix`` ports plus a core.

    2 hops (up to the leaf switch and back down) within a leaf; 4 hops
    (leaf -> core -> leaf) across leaves.
    """

    n: int
    radix: int = 8

    def __post_init__(self):
        if self.radix <= 0:
            raise ReproError("fat-tree radix must be positive")

    def hops(self, src: int, dst: int) -> int:
        if not (0 <= src < self.n and 0 <= dst < self.n):
            raise ReproError(f"bad processor pair ({src}, {dst})")
        if src == dst:
            return 0
        return 2 if src // self.radix == dst // self.radix else 4

    def size(self) -> int:
        return self.n
