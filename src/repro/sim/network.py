"""Cluster interconnect model: messages, latency, bandwidth."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.topology import Topology

__all__ = ["Message", "Network"]


@dataclass
class Message:
    """One message in flight between simulated processors.

    ``payload`` is an arbitrary Python object (the higher layers put
    envelopes, packed thread images, or MPI data here); ``size_bytes`` is
    the simulated wire size used for bandwidth accounting — the two are
    decoupled on purpose, since e.g. a packed thread's wire size is the size
    of its simulated stack and heap, not of the Python object carrying it.

    ``msg_id`` is assigned by the sending :class:`~repro.sim.cluster.Cluster`
    from a per-cluster counter, so ids are deterministic across runs: two
    identical simulations in one host process number their messages
    identically (a module-global counter here once broke exactly that).
    """

    src: int
    dst: int
    payload: Any
    size_bytes: int
    tag: str = ""
    send_time: float = 0.0
    msg_id: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Message #{self.msg_id} {self.src}->{self.dst} "
                f"{self.size_bytes}B tag={self.tag!r}>")


@dataclass(frozen=True)
class Network:
    """Latency/bandwidth interconnect model (Myrinet-class defaults).

    The Tungsten cluster used for Figure 12 had a Myrinet network; we use
    ~6.5 µs latency and ~250 MB/s sustained bandwidth as the default, which
    is the right class of machine for every experiment in the paper.

    An optional :class:`~repro.sim.topology.Topology` adds ``per_hop_ns``
    of latency per network hop between the endpoints (zero-hop/no-topology
    messages pay only the base latency).
    """

    latency_ns: float = 6_500.0
    bytes_per_ns: float = 0.25
    per_message_cpu_ns: float = 800.0     # software send/receive overhead
    topology: Optional["Topology"] = None
    per_hop_ns: float = 120.0

    def hop_ns(self, src: Optional[int], dst: Optional[int]) -> float:
        """Topology-dependent extra latency for one message."""
        if self.topology is None or src is None or dst is None:
            return 0.0
        return self.per_hop_ns * self.topology.hops(src, dst)

    def transfer_ns(self, size_bytes: int, src: Optional[int] = None,
                    dst: Optional[int] = None) -> float:
        """Pure wire time for a message of ``size_bytes``."""
        return (self.latency_ns + self.hop_ns(src, dst)
                + size_bytes / self.bytes_per_ns)

    def delivery_time(self, send_time: float, size_bytes: int,
                      src: Optional[int] = None,
                      dst: Optional[int] = None) -> float:
        """Virtual time at which a message sent at ``send_time`` arrives."""
        return (send_time + self.per_message_cpu_ns
                + self.transfer_ns(size_bytes, src, dst))
