"""Simulated processors and their per-node OS model."""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

from repro.errors import (CommError, ProcessLimitExceeded, ReproError,
                          ThreadLimitExceeded)
from repro.sim.clock import SimClock
from repro.sim.network import Message
from repro.sim.platform import PlatformProfile
from repro.vm.addrspace import AddressSpace
from repro.vm.physical import PhysicalMemory

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.cluster import Cluster

__all__ = ["KernelModel", "Processor"]


class KernelModel:
    """Per-node operating-system resource model.

    Tracks how many processes and kernel threads exist on the node and
    enforces the platform's practical limits (Table 2).  The flow-of-control
    mechanisms in :mod:`repro.flows` call into this when they create flows,
    so the Table 2 benchmark *executes* the refusal path rather than reading
    a constant.
    """

    def __init__(self, profile: PlatformProfile):
        self.profile = profile
        #: The initial program counts as one process.
        self.process_count = 1
        self.kthread_count = 0

    def fork(self) -> None:
        """Account for one new process; raise if the limit is hit."""
        limit = self.profile.max_processes
        if limit is not None and self.process_count >= limit:
            raise ProcessLimitExceeded(
                f"{self.profile.name}: process limit {limit} reached"
            )
        self.process_count += 1

    def exit_process(self) -> None:
        """Account for one process exiting."""
        if self.process_count <= 1:
            raise ProcessLimitExceeded("cannot exit the last process")
        self.process_count -= 1

    def thread_create(self) -> None:
        """Account for one new kernel thread; raise if the limit is hit."""
        limit = self.profile.max_kthreads
        if limit is not None and self.kthread_count >= limit:
            raise ThreadLimitExceeded(
                f"{self.profile.name}: kernel thread limit {limit} reached"
            )
        self.kthread_count += 1

    def thread_exit(self) -> None:
        """Account for one kernel thread exiting."""
        if self.kthread_count <= 0:
            raise ThreadLimitExceeded("no kernel threads to exit")
        self.kthread_count -= 1


class Processor:
    """One simulated processor (one node of the cluster).

    A processor owns a virtual clock, a physical-memory pool, a main
    address space (the runtime process), and a kernel model.  Higher layers
    (the Converse-style scheduler, the Charm runtime) register a message
    handler; the cluster calls :meth:`deliver` when a message's arrival
    event fires.
    """

    def __init__(self, proc_id: int, profile: PlatformProfile,
                 cluster: Optional["Cluster"] = None):
        self.id = proc_id
        self.profile = profile
        self.cluster = cluster
        self.clock = SimClock()
        self.physical = PhysicalMemory(profile.physical_memory_bytes,
                                       profile.page_size)
        self.layout = profile.layout()
        #: Address space of the runtime process hosting user-level threads.
        self.space = AddressSpace(self.layout, self.physical,
                                  name=f"pe{proc_id}")
        self.kernel = KernelModel(profile)
        self._handler: Optional[Callable[[Message], None]] = None
        #: Fail-stop flag: a crashed (or evacuated-then-shut-down) node.
        #: Set by the chaos harness; a failed processor must neither send
        #: nor receive — both paths raise :class:`~repro.errors.CommError`
        #: loudly rather than silently dropping traffic.
        self.failed = False
        #: Fraction of this processor stolen by external work — the
        #: "adapting to load on workstation clusters" scenario (paper
        #: ref [10]).  Work charged here takes 1/(1-load) times longer, so
        #: measurement-based balancers naturally migrate work away.
        self.background_load = 0.0
        # -- statistics -----------------------------------------------------
        self.messages_sent = 0
        self.messages_received = 0
        self.bytes_sent = 0
        self.busy_ns = 0.0

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """This processor's local virtual time in ns."""
        return self.clock.now

    def charge(self, ns: float) -> float:
        """Charge ``ns`` of local work; returns the new local time.

        On a processor with nonzero :attr:`background_load`, the same work
        takes ``ns / (1 - load)`` of wall (virtual) time — external jobs
        steal the difference.
        """
        if self.background_load:
            if not 0.0 <= self.background_load < 1.0:
                raise ReproError(
                    f"background_load must be in [0, 1), got "
                    f"{self.background_load}")
            ns = ns / (1.0 - self.background_load)
        self.busy_ns += ns
        return self.clock.advance(ns)

    # -- messaging ------------------------------------------------------------

    def set_message_handler(self, fn: Callable[[Message], None]) -> None:
        """Install the function called for each arriving message."""
        self._handler = fn

    def send(self, dst: int, payload, size_bytes: int, tag: str = "") -> Message:
        """Send a message to processor ``dst`` via the cluster network."""
        if self.cluster is None:
            raise RuntimeError(f"processor {self.id} is not attached to a cluster")
        return self.cluster.send(self.id, dst, payload, size_bytes, tag)

    def deliver(self, msg: Message, arrival_time: float) -> None:
        """Called by the cluster when ``msg`` arrives at ``arrival_time``."""
        if self.failed:
            raise CommError(
                f"message {msg.tag!r} delivered to failed processor "
                f"{self.id} — in-flight traffic at crash time")
        self.clock.advance_to(arrival_time)
        self.charge(self.cluster.network.per_message_cpu_ns
                    if self.cluster else 0.0)
        self.messages_received += 1
        if self._handler is None:
            raise RuntimeError(
                f"processor {self.id} received a message but has no handler"
            )
        self._handler(msg)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Processor {self.id} ({self.profile.name}) t={self.now:.0f}ns>"
