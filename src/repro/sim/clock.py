"""Virtual-time clock."""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["SimClock"]


class SimClock:
    """A monotonic virtual clock measured in nanoseconds.

    Each simulated processor owns one.  Work charges time with
    :meth:`advance`; message deliveries pull the clock forward with
    :meth:`advance_to` (a processor cannot handle an event before the event
    exists, but an idle processor's clock jumps forward to the delivery
    time).
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in nanoseconds."""
        return self._now

    def advance(self, ns: float) -> float:
        """Charge ``ns`` nanoseconds of work; returns the new time."""
        if ns < 0:
            raise ReproError(f"cannot advance clock by negative time {ns}")
        self._now += ns
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to ``t`` if ``t`` is later; never backward."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self, t: float = 0.0) -> None:
        """Reset the clock (test helper)."""
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SimClock {self._now:.1f}ns>"
