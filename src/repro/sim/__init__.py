"""Simulated parallel machine: clocks, processors, network, platforms.

This package provides the "hardware" the rest of the library runs on: a
deterministic discrete-event :class:`Cluster` of :class:`Processor` objects
connected by a latency/bandwidth :class:`Network`, each processor described
by a :class:`PlatformProfile` that captures the word size, memory-system
costs, scheduler costs, OS limits, and portability quirks of one of the
paper's evaluation machines.

All time is *virtual*, in nanoseconds, and every run is exactly
reproducible.  The profiles are calibrated to the paper's reported orders of
magnitude; see DESIGN.md Section 2 for what is real versus modeled.
"""

from repro.sim.clock import SimClock
from repro.sim.event import EventQueue, Event
from repro.sim.platform import PlatformProfile, PLATFORMS, get_platform
from repro.sim.network import Network, Message
from repro.sim.topology import FatTree, FullyConnected, Topology, Torus3D
from repro.sim.processor import Processor
from repro.sim.cluster import Cluster

__all__ = [
    "SimClock",
    "EventQueue",
    "Event",
    "PlatformProfile",
    "PLATFORMS",
    "get_platform",
    "Network",
    "Message",
    "Topology",
    "FullyConnected",
    "Torus3D",
    "FatTree",
    "Processor",
    "Cluster",
]
