"""The frozen reference event kernel (differential-testing oracle).

This module is a byte-for-byte copy of the pre-fast-path
``repro.kernel.event`` — a per-event-object binary heap with the
original inline run loop.  It exists solely so the differential harness
(``tests/kernel/test_differential.py``) and the property suite can run
the same randomized schedules through both implementations and assert
identical event orderings, traces, and counters.

Policy: this file only changes when the *kernel contract* changes (a
new public method, a semantic fix that both implementations must
adopt).  Performance work never touches it — that is the whole point.
See ``docs/kernel.md`` ("Differential-harness policy").

One :class:`EventKernel` instance used to back every run loop in the
tree; production code now imports the fast path from
:mod:`repro.kernel.event`.

Determinism contract (preserved bit-for-bit from the pre-kernel loops):

* events fire in ``(time, seq)`` order where ``seq`` is a per-kernel
  insertion counter — simultaneous events run in schedule (FIFO) order;
* cancellation never perturbs the order of surviving events: cancelled
  entries are lazily dropped at the heap top, and the batched sweep
  rebuilds the heap from events whose ``(time, seq)`` keys are unique,
  so pop order is unchanged;
* scheduling strictly before ``current_time`` raises
  :class:`~repro.errors.ReproError` naming the offending callback.

Bookkeeping is O(1): a live-event counter is maintained on
schedule/cancel/pop so ``len(kernel)`` and ``kernel.empty`` never scan
the heap, and a stale counter triggers the compaction sweep only when
cancelled entries dominate.
"""

from __future__ import annotations

import itertools
import weakref
from typing import Any, Callable, Iterator, List, Optional

from repro.errors import ReproError
from repro.kernel.hooks import HookBus
from repro.kernel.policy import RunPolicy
from repro.kernel.pqueue import MinHeap, heappop, heappush

__all__ = ["KernelEvent", "EventKernel"]

#: Sweep cancelled entries out of the heap once at least this many are
#: stale *and* they make up half the heap — amortized O(1) per cancel.
_SWEEP_MIN_STALE = 64


class KernelEvent:
    """One scheduled event: a callback to fire at a virtual time.

    Events compare by ``(time, seq)`` where ``seq`` is a per-kernel
    insertion counter, so simultaneous events fire in a deterministic
    FIFO order.  ``category`` and ``flow`` are free-form instrumentation
    labels (e.g. ``"net.charm"`` / ``"pe3"``) consumed by the tracer.
    """

    __slots__ = ("time", "seq", "fn", "args", "category", "flow",
                 "cancelled", "fired", "_kernel")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, category: str = "",
                 flow: Optional[str] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.category = category
        self.flow = flow
        self.cancelled = False
        self.fired = False
        #: Weak back-reference to the owning kernel.  Weak on purpose:
        #: a strong reference would put every queued event in a cycle
        #: (kernel → heap → event → kernel), and at bench scale the GC
        #: passes over those cycles cost ~10% of dispatch throughput.
        self._kernel: "Optional[weakref.ref[EventKernel]]" = None

    def cancel(self) -> None:
        """Mark the event so it never fires.  Cancelling an event that
        already fired (or was already cancelled) is a no-op."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        kernel = self._kernel() if self._kernel is not None else None
        if kernel is not None:
            kernel._note_cancel(self)

    def __lt__(self, other: "KernelEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        cat = f" {self.category}" if self.category else ""
        return f"<Event t={self.time:.1f} #{self.seq}{cat}{flag}>"


class EventKernel:
    """A time-ordered dispatch core with an instrumentation hook bus.

    Parameters
    ----------
    name:
        Instrumentation label (``"sim"``, ``"cth-pe0"``, ...) stamped
        into trace output.
    causality:
        When True (the cluster queue's setting), scheduling an event
        before ``current_time`` is an error — it would break the
        conservative event-order execution.  Thread schedulers turn this
        off: their "time" axis is a priority, not a clock.
    """

    __slots__ = ("name", "causality", "hooks", "current_time",
                 "events_processed", "_heap", "_data", "_counter", "_live",
                 "_stale", "_dispatching", "_skip", "_weakself",
                 "__weakref__")

    def __init__(self, name: str = "kernel", causality: bool = True) -> None:
        self.name = name
        self.causality = causality
        self.hooks = HookBus()
        self.current_time = 0.0
        self.events_processed = 0
        self._heap = MinHeap()
        #: Alias of the heap's backing list — stable for the kernel's
        #: lifetime (rebuild mutates in place), saving an attribute hop
        #: on every schedule/peek/step.
        self._data = self._heap.data
        self._counter = itertools.count()
        self._live = 0          # non-cancelled events in the heap
        self._stale = 0         # cancelled events still in the heap
        self._dispatching = False
        self._skip = False
        self._weakself = weakref.ref(self)

    # -- queue state (all O(1)) -----------------------------------------

    def __len__(self) -> int:
        return self._live

    @property
    def live(self) -> int:
        """Number of live (non-cancelled, unfired) events queued."""
        return self._live

    @property
    def empty(self) -> bool:
        """True when no live events remain."""
        return self._live == 0

    def live_events(self) -> List[KernelEvent]:
        """Snapshot of pending live events in dispatch order (O(n log n);
        for introspection and façades, not the hot path)."""
        return sorted(e for e in self._heap if not e.cancelled)

    # -- scheduling -----------------------------------------------------

    def schedule(self, time: float, fn: Callable[..., Any], *args: Any,
                 category: str = "", flow: Optional[str] = None
                 ) -> KernelEvent:
        """Schedule ``fn(*args)`` to run at virtual time ``time``."""
        if self.causality and time < self.current_time:
            site = getattr(fn, "__qualname__", None) or repr(fn)
            raise ReproError(
                f"cannot schedule event at {time} before current time "
                f"{self.current_time} (causality violation; "
                f"scheduled from {site})"
            )
        # Inline KernelEvent.__init__ (kept in sync with it): schedule
        # is the hottest allocation site in the tree, and the extra call
        # frame alone is measurable against the pre-kernel loop.
        ev = KernelEvent.__new__(KernelEvent)
        ev.time = time
        ev.seq = next(self._counter)
        ev.fn = fn
        ev.args = args
        ev.category = category
        ev.flow = flow
        ev.cancelled = False
        ev.fired = False
        ev._kernel = self._weakself
        heappush(self._data, ev)
        self._live += 1
        hooks = self.hooks
        if hooks.hot and hooks.on_schedule:
            for h in hooks.on_schedule:
                h(self, ev)
        return ev

    def _note_cancel(self, ev: KernelEvent) -> None:
        """Called by :meth:`KernelEvent.cancel` exactly once per event."""
        self._live -= 1
        self._stale += 1
        hooks = self.hooks
        if hooks.hot and hooks.on_cancel:
            for h in hooks.on_cancel:
                h(self, ev)
        # Batched compaction: only when stale entries dominate the heap,
        # so each cancelled event is rebuilt over at most once (amortized
        # O(log n) per cancel).  Keys are unique (time, seq) pairs, so
        # rebuilding cannot reorder the survivors.
        if (self._stale >= _SWEEP_MIN_STALE
                and self._stale * 2 >= len(self._heap)):
            self._heap.rebuild(e for e in self._heap if not e.cancelled)
            self._stale = 0

    # -- dispatch -------------------------------------------------------

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None."""
        raw = self._data
        while raw:
            ev = raw[0]
            if not ev.cancelled:
                return ev.time
            heappop(raw)
            self._stale -= 1
        return None

    def step(self) -> bool:
        """Pop and run the next live event.  Returns False if queue empty."""
        raw = self._data
        while True:
            if not raw:
                return False
            ev = heappop(raw)
            if ev.cancelled:
                self._stale -= 1
                continue
            break
        ev.fired = True
        self._live -= 1
        self.current_time = ev.time
        self.events_processed += 1
        self._skip = False
        self._dispatching = True
        hooks = self.hooks
        hot = hooks.hot
        if hot and hooks.on_dispatch_begin:
            for h in hooks.on_dispatch_begin:
                h(self, ev)
        try:
            ev.fn(*ev.args)
        finally:
            self._dispatching = False
            if hot and hooks.on_dispatch_end:
                for h in hooks.on_dispatch_end:
                    h(self, ev)
        return True

    def skip_current(self) -> None:
        """Declare the event being dispatched void: it counts neither
        against a :class:`RunPolicy` budget nor in ``events_processed``.

        The Cth scheduler uses this when a queued resumption finds its
        thread no longer READY (awoken and run through another path) —
        the pre-kernel loop's ``continue``.
        """
        if not self._dispatching:
            raise ReproError("skip_current() outside event dispatch")
        if not self._skip:
            self._skip = True
            self.events_processed -= 1

    def run(self, policy: Optional[RunPolicy] = None, *,
            until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Dispatch events in order until the policy stops us.

        With no arguments, drains the queue.  ``until``/``max_events``
        are shorthand for the corresponding :class:`RunPolicy` fields.
        Returns the number of events dispatched by this call (skipped
        events are free).

        When the queue drains and the policy allows quiescence
        detection, the ``on_idle`` hooks run first — any of them may
        re-arm work (return True after scheduling) and the loop resumes;
        only when the queue stays empty do the ``on_quiescence`` hooks
        fire and the call return.
        """
        if policy is None:
            policy = RunPolicy(until=until, max_events=max_events)
        processed = 0
        # Hot loop: this inlines peek_time() + step() (kept in sync with
        # them) with the policy's fields as locals — at bench scale the
        # per-event method calls are the difference between matching the
        # pre-kernel loop's throughput and trailing it by ~10%.  ``raw``
        # stays valid across sweeps because rebuild() mutates in place.
        bound = policy.until
        budget = policy.max_events
        raw = self._data
        hooks = self.hooks
        while True:
            while True:
                if budget is not None and processed >= budget:
                    return processed
                while raw:
                    ev = raw[0]
                    if not ev.cancelled:
                        break
                    heappop(raw)
                    self._stale -= 1
                else:
                    break
                if bound is not None and ev.time > bound:
                    return processed
                heappop(raw)
                ev.fired = True
                self._live -= 1
                self.current_time = ev.time
                self.events_processed += 1
                self._skip = False
                self._dispatching = True
                if hooks.hot and hooks.on_dispatch_begin:
                    for h in hooks.on_dispatch_begin:
                        h(self, ev)
                try:
                    ev.fn(*ev.args)
                finally:
                    self._dispatching = False
                    if hooks.hot and hooks.on_dispatch_end:
                        for h in hooks.on_dispatch_end:
                            h(self, ev)
                if not self._skip:
                    processed += 1
            if not policy.quiescence:
                return processed
            hooks = self.hooks
            pumped = False
            for h in list(hooks.on_idle):
                if h(self):
                    pumped = True
            if pumped and self._live:
                continue
            for h in list(hooks.on_quiescence):
                h(self)
            return processed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<EventKernel {self.name} t={self.current_time:.1f} "
                f"live={self._live} processed={self.events_processed}>")
