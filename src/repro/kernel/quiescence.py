"""Counting quiescence detection, factored out of the charm runtime.

Quiescence = no counted messages outstanding.  The classic two-wave
protocol: a detector timer snapshots the ``(created, processed)``
counters; when two consecutive waves observe identical, balanced
counters, no counted message can be in flight, and the callback fires.

The counter is deliberately passive about *time*: the owner supplies a
``schedule_after(delay_ns, fn, *args)`` function (the charm runtime
passes the cluster's PE-0 timer), so the waves ride the same kernel as
everything else and the protocol's timing is exactly what the inlined
pre-kernel implementation produced.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["QuiescenceCounter"]


class QuiescenceCounter:
    """Created/processed counters plus the two-wave detector."""

    __slots__ = ("created", "processed")

    def __init__(self) -> None:
        self.created = 0
        self.processed = 0

    def note_created(self, n: int = 1) -> None:
        """Count ``n`` messages entering flight."""
        self.created += n

    def note_processed(self, n: int = 1) -> None:
        """Count ``n`` messages leaving flight."""
        self.processed += n

    @property
    def balanced(self) -> bool:
        """True when every created message has been processed."""
        return self.created == self.processed

    def snapshot(self) -> tuple:
        return (self.created, self.processed)

    def detect(self, schedule_after: Callable[..., Any],
               callback: Callable[[], None],
               check_ns: float = 50_000.0) -> None:
        """Fire ``callback`` once the counters are stably balanced.

        ``schedule_after(delay_ns, fn, *args)`` schedules a wave; each
        wave compares the previous snapshot with the current one and
        either declares quiescence or re-arms.
        """

        def wave(prev):
            snap = self.snapshot()
            if prev == snap and snap[0] == snap[1]:
                callback()
            else:
                schedule_after(check_ns, wave, snap)

        schedule_after(check_ns, wave, None)
