"""The kernel's priority-queue primitive.

This module is the single sanctioned home of the ``heapq`` import in the
source tree (enforced by the KRN001 lint rule and the tier-1 gate in
``tests/test_lint.py``).  Anything outside ``repro.kernel`` that needs a
heap — load-balancing strategies, future schedulers — goes through
:class:`MinHeap` so the ordering discipline (and any future replacement
of the backing structure) lives in one place.  Within the kernel
package, the frozen reference kernel (:mod:`repro.kernel.refkernel`)
uses the re-exported ``heappush``/``heappop`` directly on
:attr:`MinHeap.data`; the fast-path event core replaced its heap with
batched sorted slots and no longer goes through this module.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, List, Optional

__all__ = ["MinHeap", "heappush", "heappop", "heapify", "heapreplace"]

#: Re-exports for the kernel package's hot paths (and only those — the
#: KRN001 rule flags heap calls anywhere else).
heappush = heapq.heappush
heappop = heapq.heappop
heapify = heapq.heapify
heapreplace = heapq.heapreplace


class MinHeap:
    """A thin, deterministic min-heap over comparable items.

    Ties between equal items fall back to the backing list's stability
    guarantees only if the items themselves compare unequal — callers
    that need FIFO ties (the event kernel, GreedyLB's ``(finish, pe)``
    tuples) must encode the tie-break in the item, exactly as before.

    :attr:`data` is the raw backing list, heap-ordered.  Its identity is
    stable for the life of the ``MinHeap`` (``rebuild`` mutates it in
    place); outside the kernel package treat it as read-only.
    """

    __slots__ = ("data",)

    def __init__(self, items: Optional[Iterable[Any]] = None) -> None:
        self.data: List[Any] = list(items) if items is not None else []
        if self.data:
            heapq.heapify(self.data)

    def push(self, item: Any) -> None:
        heapq.heappush(self.data, item)

    def pop(self) -> Any:
        return heapq.heappop(self.data)

    def peek(self) -> Any:
        return self.data[0]

    def replace(self, item: Any) -> Any:
        """Pop the smallest item and push ``item`` in one sift."""
        return heapq.heapreplace(self.data, item)

    def rebuild(self, items: Iterable[Any]) -> None:
        """Replace the heap's contents wholesale, in place (used by the
        kernel's batched cancellation sweep)."""
        self.data[:] = items
        heapq.heapify(self.data)

    def __len__(self) -> int:
        return len(self.data)

    def __bool__(self) -> bool:
        return bool(self.data)

    def __iter__(self):
        """Unordered iteration over the raw backing list."""
        return iter(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MinHeap len={len(self.data)}>"
