"""The kernel hook bus: the only sanctioned interception point.

Two kinds of subscription live here:

* **notification hooks** — the fixed kernel lifecycle points
  (:data:`NOTIFY_HOOKS`).  Subscribers observe but cannot change what the
  kernel does.  Tracing and profiling live on these.
* **named channels** — string-keyed *filter* and *decision* points that
  runtimes publish at their faultable/pluggable moments (``"net.send"``,
  ``"migration.start"``, ``"checkpoint.write"``, ...).  Subscribers can
  rewrite a value (:meth:`HookBus.filter`) or return a verdict
  (:meth:`HookBus.decide`).  Fault injection lives on these.

The bus is engineered for the common case of *no* subscribers: the
kernel's hot loop checks the single :attr:`HookBus.hot` flag (kept
current by subscribe/unsubscribe) before touching any hook list, and an
unused channel costs one dict lookup at its publish site.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import ReproError

__all__ = ["NOTIFY_HOOKS", "HookBus"]

#: The kernel lifecycle notification hooks, in firing order over an
#: event's life: scheduled, dispatched (begin/end), or cancelled; plus
#: the queue-level ``on_idle`` (drained, may re-arm) and
#: ``on_quiescence`` (drained for good) points.
NOTIFY_HOOKS = (
    "on_schedule",
    "on_dispatch_begin",
    "on_dispatch_end",
    "on_cancel",
    "on_idle",
    "on_quiescence",
)


class HookBus:
    """Subscription registry for one :class:`~repro.kernel.EventKernel`."""

    __slots__ = NOTIFY_HOOKS + ("hot", "_channels")

    def __init__(self) -> None:
        for name in NOTIFY_HOOKS:
            setattr(self, name, [])
        #: True when any notification hook has a subscriber; the kernel's
        #: dispatch loop checks only this flag on the fast path.
        self.hot = False
        self._channels: Dict[str, List[Callable]] = {}

    # -- subscription ---------------------------------------------------

    def subscribe(self, name: str, fn: Callable) -> Callable:
        """Attach ``fn`` to a notification hook or a named channel.

        Returns ``fn`` so the call can be used as a decorator.
        """
        if name in NOTIFY_HOOKS:
            getattr(self, name).append(fn)
            self.hot = True
        else:
            self._channels.setdefault(name, []).append(fn)
        return fn

    def unsubscribe(self, name: str, fn: Callable) -> None:
        """Detach ``fn``; unknown subscriptions are an error (they mean
        a tracer or injector believed it was attached when it was not)."""
        try:
            if name in NOTIFY_HOOKS:
                getattr(self, name).remove(fn)
                self.hot = any(getattr(self, n) for n in NOTIFY_HOOKS)
            else:
                self._channels[name].remove(fn)
                if not self._channels[name]:
                    del self._channels[name]
        except (KeyError, ValueError):
            raise ReproError(
                f"unsubscribe({name!r}): callable was not subscribed")

    def has(self, channel: str) -> bool:
        """Whether a named channel currently has subscribers."""
        return bool(self._channels.get(channel))

    # -- named channels -------------------------------------------------

    def filter(self, channel: str, value: Any, **ctx: Any) -> Any:
        """Pass ``value`` through every subscriber of ``channel``.

        Each subscriber is called ``fn(value, **ctx)`` and its return
        value replaces ``value``.  With no subscribers the input comes
        straight back (one dict lookup).
        """
        subs = self._channels.get(channel)
        if not subs:
            return value
        for fn in subs:
            value = fn(value, **ctx)
        return value

    def decide(self, channel: str, **ctx: Any) -> Any:
        """Ask ``channel``'s subscribers for a verdict.

        Subscribers are called ``fn(**ctx)`` in subscription order; the
        first non-``None`` return wins.  No subscribers (or all
        abstaining) → ``None``.
        """
        subs = self._channels.get(channel)
        if not subs:
            return None
        for fn in subs:
            verdict = fn(**ctx)
            if verdict is not None:
                return verdict
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        n = sum(len(getattr(self, name)) for name in NOTIFY_HOOKS)
        return (f"<HookBus {n} notify subscriber(s), "
                f"{sorted(self._channels)} channels>")
