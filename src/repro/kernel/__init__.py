"""The one event kernel every runtime dispatches through.

The paper's central claim is that threads and events are interchangeable
flows of control over one underlying scheduler.  This package is that
scheduler, made literal: a single deterministic, instrumented event core
(:class:`EventKernel`) with

* one batched, slot-based ready/timed queue — O(1) live-event counting,
  lazy cancellation with batched compaction, and a ``(time, seq)`` FIFO
  tie-break so simultaneous events always fire in schedule order.  The
  hooks-off drain is a sort-and-walk fast path (see
  ``docs/kernel.md``); the frozen pre-fast-path implementation survives
  as :mod:`repro.kernel.refkernel`, the differential-testing oracle;
* a :class:`RunPolicy` object expressing every stop condition the
  runtimes used to hand-roll (``until`` / ``max_events`` / run to
  quiescence);
* a first-class :class:`HookBus` (``on_schedule``, ``on_dispatch_begin``
  / ``on_dispatch_end``, ``on_cancel``, ``on_idle``, ``on_quiescence``
  plus named filter/decision channels) that is the *only* sanctioned
  interception point — fault injection, tracing, and profiling all
  subscribe here instead of wrapping runtime call sites;
* :class:`KernelTracer` — Projections-style structured event logs (JSON
  lines), per-flow timelines, and counter metrics with near-zero cost
  when no subscriber is attached.

Layering (see ``docs/architecture.md``): kernel → flows → runtimes →
workloads.  The simulated cluster's :class:`~repro.sim.event.EventQueue`
is a thin façade over an :class:`EventKernel`; the Cth thread scheduler
schedules thread resumptions as kernel events; charm/AMPI message
delivery, SDAG continuations, BigSim, and POSE all dispatch through the
cluster's kernel.
"""

from repro.kernel.hooks import HookBus
from repro.kernel.event import EventKernel, KernelEvent
from repro.kernel.policy import RunPolicy
from repro.kernel.pqueue import MinHeap
from repro.kernel.quiescence import QuiescenceCounter
from repro.kernel.trace import KernelTracer, load_trace

__all__ = [
    "EventKernel",
    "KernelEvent",
    "RunPolicy",
    "HookBus",
    "KernelTracer",
    "load_trace",
    "QuiescenceCounter",
    "MinHeap",
]
