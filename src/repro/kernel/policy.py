"""Run policies: the stop conditions of every runtime, in one object.

Before the kernel existed each run loop hand-rolled its own stop logic —
``EventQueue.run(until, max_events)``, ``CthScheduler.run(max_switches)``,
the AMPI interleave loop's round budget, BigSim's and POSE's drains.  A
:class:`RunPolicy` captures all of them declaratively:

* ``until`` — advance virtual time no further than this bound (an event
  stamped later than ``until`` stays queued);
* ``max_events`` — dispatch at most this many events (skipped/stale
  events do not count);
* ``quiescence`` — when True (the default) a fully drained queue fires
  the ``on_idle`` hooks (which may re-arm work) and then
  ``on_quiescence``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RunPolicy"]


@dataclass(frozen=True)
class RunPolicy:
    """Declarative stop condition for :meth:`EventKernel.run`."""

    until: Optional[float] = None
    max_events: Optional[int] = None
    quiescence: bool = True

    @classmethod
    def drain(cls) -> "RunPolicy":
        """Run until the queue is empty (the common runtime default)."""
        return cls()

    @classmethod
    def until_time(cls, until: float) -> "RunPolicy":
        """Run no further than virtual time ``until``."""
        return cls(until=until)

    @classmethod
    def budget(cls, max_events: int) -> "RunPolicy":
        """Dispatch at most ``max_events`` events."""
        return cls(max_events=max_events)

    def exhausted(self, processed: int) -> bool:
        """Whether the event budget is spent after ``processed`` dispatches."""
        return self.max_events is not None and processed >= self.max_events

    def cuts(self, time: float) -> bool:
        """Whether an event at ``time`` lies beyond the time bound."""
        return self.until is not None and time > self.until
