"""Projections-style tracing over the kernel hook bus.

A :class:`KernelTracer` subscribes to a kernel's notification hooks and
records one structured entry per lifecycle point.  Nothing in the kernel
knows the tracer exists — when it is detached (the default), the
kernel's only instrumentation cost is one boolean check per dispatch.

Output formats:

* :meth:`KernelTracer.dump` — JSON-lines event log, one object per
  line, in the spirit of Charm++ Projections logs.  Every entry carries
  ``{"ev": kind, "t": virtual_time, "seq": ..., "kernel": name}`` plus
  ``category``/``flow``/``site`` where known.  Kinds: ``schedule``,
  ``begin``, ``end``, ``cancel``, ``idle``, ``quiescence``.
* :meth:`KernelTracer.timeline` — per-flow dispatch timeline
  (``flow → [(time, category, site), ...]``).
* :attr:`KernelTracer.counters` — aggregate metrics: events scheduled /
  dispatched / skipped / cancelled, context switches (``cth.resume``
  dispatches), messages (``net.*`` dispatches), quiescence count, and
  total virtual idle time between dispatches.

Record construction is **lazy**: a tracer built with ``record=False``
maintains only the counters and never allocates a trace-record dict —
``entries`` stays empty and ``dump``/``timeline`` report nothing.  Use
it when a run only needs the aggregate numbers (long benches, CI
smokes) and the per-event log would be dead weight.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.errors import ReproError

__all__ = ["KernelTracer", "load_trace"]


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read a JSON-lines trace file into a list of entry dicts.

    This is the one trace-reading surface: the obs report, the query
    CLI, and the replay tooling all load through here.  Two validity
    rules beyond "each line parses":

    * Every line must decode to a JSON *object* — a bare array or
      scalar would crash every consumer downstream, so it is rejected
      here with the file/line position.
    * A torn **final** line is tolerated, but only when the file does
      not end in a newline: a run killed mid-append (SIGKILL between
      ``write`` calls) legitimately leaves an unterminated tail, and
      the serve journal already honors exactly this contract.  A
      malformed line that *is* newline-terminated — or sits mid-file —
      is corruption and stays a hard error.
    """
    with open(path) as fh:
        data = fh.read()
    entries: List[Dict[str, Any]] = []
    raw_lines = data.split("\n")
    terminated = data.endswith("\n")
    last = len(raw_lines) - 1
    for index, line in enumerate(raw_lines):
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except ValueError as e:
            if index == last and not terminated:
                break  # torn tail from a killed writer: drop it
            raise ReproError(
                f"{path}:{index + 1}: not a JSON trace line: {e}")
        if not isinstance(entry, dict):
            raise ReproError(
                f"{path}:{index + 1}: trace line is not a JSON object")
        entries.append(entry)
    return entries


class KernelTracer:
    """Structured event log + counters for one :class:`EventKernel`.

    Parameters
    ----------
    record:
        When True (the default), build one entry dict per lifecycle
        point into :attr:`entries`.  When False, keep counters only:
        no per-event allocation happens anywhere in the tracer.
    """

    def __init__(self, record: bool = True) -> None:
        self.record = record
        self.entries: List[Dict[str, Any]] = []
        self.counters: Dict[str, Any] = {
            "scheduled": 0,
            "dispatched": 0,
            "skipped": 0,
            "cancelled": 0,
            "switches": 0,
            "messages": 0,
            "quiescences": 0,
            "idle_ns": 0.0,
            "by_category": {},
        }
        self._kernel = None
        self._last_end_time: Optional[float] = None

    # -- attachment -----------------------------------------------------

    def attach(self, kernel) -> "KernelTracer":
        """Subscribe to every notification hook of ``kernel``."""
        if self._kernel is not None:
            raise ReproError("tracer is already attached")
        self._kernel = kernel
        bus = kernel.hooks
        bus.subscribe("on_schedule", self._on_schedule)
        bus.subscribe("on_dispatch_begin", self._on_begin)
        bus.subscribe("on_dispatch_end", self._on_end)
        bus.subscribe("on_cancel", self._on_cancel)
        bus.subscribe("on_idle", self._on_idle)
        bus.subscribe("on_quiescence", self._on_quiescence)
        return self

    def detach(self) -> None:
        """Unsubscribe; the kernel returns to its zero-cost path."""
        if self._kernel is None:
            raise ReproError("tracer is not attached")
        bus = self._kernel.hooks
        bus.unsubscribe("on_schedule", self._on_schedule)
        bus.unsubscribe("on_dispatch_begin", self._on_begin)
        bus.unsubscribe("on_dispatch_end", self._on_end)
        bus.unsubscribe("on_cancel", self._on_cancel)
        bus.unsubscribe("on_idle", self._on_idle)
        bus.unsubscribe("on_quiescence", self._on_quiescence)
        self._kernel = None

    # -- hook callbacks -------------------------------------------------

    def _entry(self, kind: str, kernel, ev=None) -> Dict[str, Any]:
        entry: Dict[str, Any] = {"ev": kind, "kernel": kernel.name,
                                 "t": kernel.current_time}
        if ev is not None:
            entry["t"] = ev.time
            entry["seq"] = ev.seq
            if ev.category:
                entry["category"] = ev.category
            if ev.flow is not None:
                entry["flow"] = ev.flow
            site = getattr(ev.fn, "__qualname__", None)
            if site:
                entry["site"] = site
            if ev.category and ev.category.startswith("net."):
                # Message deliveries carry the Message as their first
                # argument; surface its identity so trace consumers (the
                # repro.obs report) can build size/latency histograms and
                # migration tables without the live objects.
                msg = ev.args[0] if ev.args else None
                src = getattr(msg, "src", None)
                if src is not None:
                    entry["src"] = src
                    entry["dst"] = msg.dst
                    entry["bytes"] = msg.size_bytes
                    entry["sent"] = msg.send_time
        self.entries.append(entry)
        return entry

    def _on_schedule(self, kernel, ev) -> None:
        self.counters["scheduled"] += 1
        if self.record:
            self._entry("schedule", kernel, ev)

    def _on_begin(self, kernel, ev) -> None:
        if self.record:
            self._entry("begin", kernel, ev)
        if self._last_end_time is not None and ev.time > self._last_end_time:
            self.counters["idle_ns"] += ev.time - self._last_end_time

    def _on_end(self, kernel, ev) -> None:
        entry = self._entry("end", kernel, ev) if self.record else None
        self._last_end_time = ev.time
        c = self.counters
        if kernel._skip:
            if entry is not None:
                entry["skipped"] = True
            c["skipped"] += 1
            return
        c["dispatched"] += 1
        cat = ev.category or "uncategorized"
        by_cat = c["by_category"]
        by_cat[cat] = by_cat.get(cat, 0) + 1
        if cat == "cth.resume":
            c["switches"] += 1
        elif cat.startswith("net."):
            c["messages"] += 1

    def _on_cancel(self, kernel, ev) -> None:
        self.counters["cancelled"] += 1
        if self.record:
            self._entry("cancel", kernel, ev)

    def _on_idle(self, kernel) -> bool:
        if self.record:
            self._entry("idle", kernel)
        return False  # observation only: never re-arms work

    def _on_quiescence(self, kernel) -> None:
        self.counters["quiescences"] += 1
        if self.record:
            self._entry("quiescence", kernel)

    # -- reports --------------------------------------------------------

    def timeline(self) -> Dict[str, List[tuple]]:
        """Per-flow dispatch timeline from the recorded ``begin`` entries."""
        out: Dict[str, List[tuple]] = {}
        for e in self.entries:
            if e["ev"] != "begin":
                continue
            flow = e.get("flow", "?")
            out.setdefault(flow, []).append(
                (e["t"], e.get("category", ""), e.get("site", "")))
        return out

    def dump(self, path: str) -> int:
        """Write the event log as JSON lines; returns the entry count."""
        with open(path, "w") as fh:
            for e in self.entries:
                fh.write(json.dumps(e, sort_keys=True))
                fh.write("\n")
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.counters
        return (f"<KernelTracer dispatched={c['dispatched']} "
                f"scheduled={c['scheduled']} entries={len(self.entries)}>")
