"""The deterministic, instrumented event core — batched fast path.

One :class:`EventKernel` instance backs every run loop in the tree: the
simulated cluster's :class:`~repro.sim.event.EventQueue` façade, each
processor's Cth thread scheduler (thread resumptions are kernel events),
and — through the cluster — charm/AMPI delivery, BigSim, and POSE.

Determinism contract (preserved bit-for-bit from the pre-kernel loops,
and pinned against the frozen reference implementation in
:mod:`repro.kernel.refkernel` by ``tests/kernel/test_differential.py``):

* events fire in ``(time, seq)`` order where ``seq`` is a per-kernel
  insertion counter — simultaneous events run in schedule (FIFO) order;
* cancellation never perturbs the order of surviving events: cancelled
  slots are lazily dropped during dispatch, and the batched compaction
  filters in place without reordering;
* scheduling strictly before ``current_time`` raises
  :class:`~repro.errors.ReproError` naming the offending callback.

Storage model (the fast path)
-----------------------------
Instead of a binary heap of per-event objects, pending events are plain
8-slot lists — ``[time, seq, state, fn, args, category, flow, handle]``
— split across two containers:

* ``_data``: unsorted arrivals (append-only between batches);
* ``_batch``: the consume side, sorted **descending** so the earliest
  event sits at the end (``batch[-1]``) where ``list.pop()`` is O(1).

A refill merges ``_data`` into ``_batch`` with one ``list.sort`` — for
the common mostly-ordered arrival pattern Timsort is close to O(n), and
list-vs-list comparison runs entirely in C.  ``seq`` is unique, so the
comparison never reaches the callback slots.  The drain loop then walks
the batch with a bare ``for``, firing callbacks with no per-event method
calls, hook checks, or policy evaluation: those are hoisted to batch
boundaries.  ``state`` is 0 (live), 1 (cancelled), or 2 (fired); stale
slots are skipped and dropped wholesale with the batch.

:class:`KernelEvent` still exists, but as a lazily-materialized *view*
over a slot (``schedule()`` returns one eagerly for compatibility; the
bulk :meth:`EventKernel.post`/:meth:`EventKernel.post_batch` APIs return
raw slots and allocate no handle).  Hooks-off runs therefore allocate
nothing per event beyond the slot itself.

Bookkeeping is O(1) and derived: ``len(kernel)`` is
``posted - fired - cancelled`` from three monotone counters, so nothing
is scanned and the hot loop maintains no per-event live counter.

Contract deltas vs. the reference kernel (documented, hook-invisible):

* ``run()`` is **not re-entrant** on the same kernel — it raises
  :class:`~repro.errors.ReproError` instead of corrupting the batch
  (nothing in the tree nests; the AMPI interleave drives distinct
  kernels from the top level).  ``step()`` likewise refuses while a
  ``run()`` is dispatching; ``peek_time()`` stays safe everywhere.
* notify-hook subscriptions made *during* a hooks-off ``run()`` take
  effect at the next batch boundary, not the next event.  Attach
  tracers while the kernel is idle (everything in the tree does).
* ``_dispatching`` is batch-granular on the hooks-off path (it is
  per-event whenever hooks are hot, matching the reference exactly).
* the fired-event counters behind ``len()``/``live``/``empty`` are
  flushed at batch boundaries on the hooks-off path, so a callback
  reading them *mid-drain* sees the pre-batch value.  State-based
  introspection (``live_events()``, handle flags) is always exact;
  nothing in the tree reads the counters mid-dispatch.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.errors import ReproError
from repro.kernel.hooks import HookBus
from repro.kernel.policy import RunPolicy

__all__ = ["KernelEvent", "EventKernel"]

#: Sweep cancelled slots out of storage once at least this many are
#: stale *and* they make up half the physical queue — amortized O(1)
#: per cancel.  (Per-call ``cancel_slot`` only evaluates the threshold
#: every 8th cancel, so compaction may lag by up to 7 slots.)
_SWEEP_MIN_STALE = 64

# Slot layout indices (a slot is a plain list; see module docstring).
_TIME, _SEQ, _STATE, _FN, _ARGS, _CAT, _FLOW, _HANDLE = range(8)


class KernelEvent:
    """A view handle over one scheduled event slot.

    Events compare by ``(time, seq)`` where ``seq`` is a per-kernel
    insertion counter, so simultaneous events fire in a deterministic
    FIFO order.  ``category`` and ``flow`` are free-form instrumentation
    labels (e.g. ``"net.charm"`` / ``"pe3"``) consumed by the tracer.

    Handles are materialized lazily: the fast bulk APIs return raw
    slots, and a handle is only built when ``schedule()`` is used or a
    hook needs one.  All state lives in the slot, so a handle and its
    kernel always agree.
    """

    __slots__ = ("_item", "_kernel")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any],
                 args: tuple, category: str = "",
                 flow: Optional[str] = None):
        self._item = [time, seq, 0, fn, args, category, flow, None]
        self._item[_HANDLE] = self
        #: Weak back-reference to the owning kernel.  Weak on purpose:
        #: a strong reference would put every queued event in a cycle
        #: (kernel → batch → slot → handle → kernel), and at bench
        #: scale the GC passes over those cycles cost ~10% of dispatch
        #: throughput.
        self._kernel: "Optional[weakref.ref[EventKernel]]" = None

    @property
    def time(self) -> float:
        return self._item[_TIME]

    @property
    def seq(self) -> int:
        return self._item[_SEQ]

    @property
    def fn(self) -> Callable[..., Any]:
        return self._item[_FN]

    @property
    def args(self) -> tuple:
        return self._item[_ARGS]

    @property
    def category(self) -> str:
        return self._item[_CAT]

    @property
    def flow(self) -> Optional[str]:
        return self._item[_FLOW]

    @property
    def cancelled(self) -> bool:
        return self._item[_STATE] == 1

    @property
    def fired(self) -> bool:
        return self._item[_STATE] == 2

    def cancel(self) -> None:
        """Mark the event so it never fires.  Cancelling an event that
        already fired (or was already cancelled) is a no-op."""
        item = self._item
        if item[_STATE]:
            return
        kernel = self._kernel() if self._kernel is not None else None
        if kernel is None:
            item[_STATE] = 1
        else:
            kernel.cancel_slot(item)

    def __lt__(self, other: "KernelEvent") -> bool:
        a, b = self._item, other._item
        return (a[_TIME], a[_SEQ]) < (b[_TIME], b[_SEQ])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flag = " cancelled" if self.cancelled else ""
        cat = f" {self.category}" if self.category else ""
        return f"<Event t={self.time:.1f} #{self.seq}{cat}{flag}>"


class _PhysicalView:
    """Introspection shim for the legacy ``kernel._heap`` attribute.

    ``len()`` reports *physical* storage (live + stale slots), matching
    the reference kernel's heap length that the sweep tests pin;
    iteration yields handles for every physically-stored event.
    """

    __slots__ = ("_kernel",)

    def __init__(self, kernel: "EventKernel") -> None:
        self._kernel = kernel

    def __len__(self) -> int:
        k = self._kernel
        return len(k._data) + len(k._batch)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __iter__(self) -> Iterator[KernelEvent]:
        k = self._kernel
        for item in list(k._batch) + list(k._data):
            yield item[_HANDLE] or k._handle(item)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PhysicalView {len(self)} slots>"


class EventKernel:
    """A time-ordered dispatch core with an instrumentation hook bus.

    Parameters
    ----------
    name:
        Instrumentation label (``"sim"``, ``"cth-pe0"``, ...) stamped
        into trace output.
    causality:
        When True (the cluster queue's setting), scheduling an event
        before ``current_time`` is an error — it would break the
        conservative event-order execution.  Thread schedulers turn this
        off: their "time" axis is a priority, not a clock.
    """

    __slots__ = ("name", "causality", "hooks", "current_time",
                 "events_processed", "_data", "_batch", "_seq", "_nfired",
                 "_ncancelled", "_stale_est", "_dispatching", "_skip",
                 "_running", "_weakself", "__weakref__")

    def __init__(self, name: str = "kernel", causality: bool = True) -> None:
        self.name = name
        self.causality = causality
        self.hooks = HookBus()
        self.current_time = 0.0
        self.events_processed = 0
        self._data: List[list] = []     # unsorted arrivals
        self._batch: List[list] = []    # sorted descending; earliest last
        self._seq = 0                   # total slots ever posted
        self._nfired = 0                # total slots fired
        self._ncancelled = 0            # total slots cancelled
        self._stale_est = 0             # cancels since last compaction
        self._dispatching = False
        self._skip = False
        self._running = False           # inside run()/run_batch()
        self._weakself = weakref.ref(self)

    # -- queue state (all O(1)) -----------------------------------------

    def __len__(self) -> int:
        return self._seq - self._nfired - self._ncancelled

    @property
    def live(self) -> int:
        """Number of live (non-cancelled, unfired) events queued."""
        return self._seq - self._nfired - self._ncancelled

    @property
    def empty(self) -> bool:
        """True when no live events remain."""
        return self._seq - self._nfired - self._ncancelled == 0

    @property
    def _heap(self) -> _PhysicalView:
        """Legacy physical-storage view (``len`` counts live + stale
        slots, exactly like the reference kernel's backing heap)."""
        return _PhysicalView(self)

    def live_events(self) -> List[KernelEvent]:
        """Snapshot of pending live events in dispatch order (O(n log n);
        for introspection and façades, not the hot path)."""
        items = [it for it in self._batch if not it[_STATE]]
        items += [it for it in self._data if not it[_STATE]]
        items.sort()
        return [it[_HANDLE] or self._handle(it) for it in items]

    # -- scheduling -----------------------------------------------------

    def _handle(self, item: list) -> KernelEvent:
        """Materialize (and memoize) the view handle for a slot."""
        ev = KernelEvent.__new__(KernelEvent)
        ev._item = item
        ev._kernel = self._weakself
        item[_HANDLE] = ev
        return ev

    def _causality_error(self, time: float, fn: Callable[..., Any]) -> ReproError:
        site = getattr(fn, "__qualname__", None) or repr(fn)
        return ReproError(
            f"cannot schedule event at {time} before current time "
            f"{self.current_time} (causality violation; "
            f"scheduled from {site})"
        )

    def post(self, time: float, fn: Callable[..., Any], args: tuple = (),
             category: str = "", flow: Optional[str] = None) -> list:
        """Queue ``fn(*args)`` at ``time``; returns the raw slot.

        The no-handle fast path: allocates only the slot list.  The slot
        is accepted by :meth:`cancel_slot`; wrap it via ``slot[-1]`` /
        :meth:`live_events` only if a :class:`KernelEvent` is needed.
        ``args`` must be a tuple (it is splatted at dispatch).
        """
        if time < self.current_time and self.causality:
            raise self._causality_error(time, fn)
        seq = self._seq
        self._seq = seq + 1
        item = [time, seq, 0, fn, args, category, flow, None]
        self._data.append(item)
        hooks = self.hooks
        if hooks.hot and hooks.on_schedule:
            ev = self._handle(item)
            for h in hooks.on_schedule:
                h(self, ev)
        return item

    def post_batch(self, times: Iterable[float], fn: Callable[..., Any],
                   args: tuple = (), category: str = "",
                   flow: Optional[str] = None,
                   args_list: Optional[List[tuple]] = None,
                   flows: Optional[List[Optional[str]]] = None,
                   fns: Optional[List[Callable[..., Any]]] = None
                   ) -> List[list]:
        """Queue one event per entry of ``times``, all sharing
        ``fn``/``args``/labels; returns the raw slots in posted order.

        This is the bulk ingress for event-compiled flows and benches:
        the slot construction is a single list comprehension and the
        causality check one C-level ``min()`` scan, so per-event cost is
        a fraction of :meth:`schedule`.

        ``args_list`` / ``flows`` / ``fns`` optionally carry one entry
        per event (parallel to ``times``), overriding the shared
        ``args`` / ``flow`` / ``fn``.  The batched producers (cluster
        sends, POSE delivery, flow seeding) need per-event payloads,
        flow labels, and — for multi-destination send batches — the
        per-receiver ``deliver`` bound method, while still paying batch
        ingress cost; the homogeneous path is untouched when all three
        are None.
        """
        seq = self._seq
        if args_list is None and flows is None and fns is None:
            items = [[t, s, 0, fn, args, category, flow, None]
                     for s, t in enumerate(times, seq)]
        else:
            times = times if isinstance(times, list) else list(times)
            if args_list is None:
                args_list = [args] * len(times)
            if flows is None:
                flows = [flow] * len(times)
            if fns is None:
                fns = [fn] * len(times)
            if (len(args_list) != len(times) or len(flows) != len(times)
                    or len(fns) != len(times)):
                raise ReproError(
                    f"post_batch: args_list/flows/fns must parallel "
                    f"times ({len(times)} times, {len(args_list)} args, "
                    f"{len(flows)} flows, {len(fns)} fns)")
            items = [[t, s, 0, f, a, category, fl, None]
                     for s, (t, f, a, fl) in enumerate(
                         zip(times, fns, args_list, flows), seq)]
        if not items:
            return items
        if self.causality and min(items)[_TIME] < self.current_time:
            earliest = min(items)
            raise self._causality_error(earliest[_TIME], earliest[_FN])
        self._seq = seq + len(items)
        self._data.extend(items)
        hooks = self.hooks
        if hooks.hot and hooks.on_schedule:
            for item in items:
                ev = item[_HANDLE] or self._handle(item)
                for h in hooks.on_schedule:
                    h(self, ev)
        return items

    def schedule(self, time: float, fn: Callable[..., Any], *args: Any,
                 category: str = "", flow: Optional[str] = None
                 ) -> KernelEvent:
        """Schedule ``fn(*args)`` to run at virtual time ``time``."""
        item = self.post(time, fn, args, category, flow)
        return item[_HANDLE] or self._handle(item)

    # -- cancellation ---------------------------------------------------

    def cancel_slot(self, item: list) -> bool:
        """Cancel one slot (as returned by :meth:`post`).  Returns True
        if the slot was live; cancelling a fired or already-cancelled
        slot is a no-op returning False."""
        if item[_STATE]:
            return False
        item[_STATE] = 1
        self._ncancelled += 1
        hooks = self.hooks
        if hooks.hot and hooks.on_cancel:
            ev = item[_HANDLE] or self._handle(item)
            for h in hooks.on_cancel:
                h(self, ev)
        # Batched compaction: only when stale slots dominate physical
        # storage, so each cancelled slot is filtered over at most once
        # (amortized O(1) per cancel).  The threshold is evaluated every
        # 8th cancel to keep this path branch-cheap.
        self._stale_est = s = self._stale_est + 1
        if (not s & 7 and s >= _SWEEP_MIN_STALE
                and s * 2 >= len(self._data) + len(self._batch)):
            self._compact()
        return True

    def cancel_slots(self, items: Iterable[list]) -> int:
        """Bulk-cancel slots (POSE rollback, timer storms); returns the
        number that were still live."""
        n = 0
        hooks = self.hooks
        hot = hooks.hot and hooks.on_cancel
        for item in items:
            if item[_STATE]:
                continue
            item[_STATE] = 1
            n += 1
            if hot:
                ev = item[_HANDLE] or self._handle(item)
                for h in hooks.on_cancel:
                    h(self, ev)
        if n:
            self._ncancelled += n
            self._stale_est = s = self._stale_est + n
            if (s >= _SWEEP_MIN_STALE
                    and s * 2 >= len(self._data) + len(self._batch)):
                self._compact()
        return n

    def _compact(self) -> None:
        """Drop stale (cancelled/fired) slots from both containers.
        Keys are unique ``(time, seq)`` pairs and the filters preserve
        relative order, so survivors cannot be reordered."""
        if self._running:
            # The drain loop owns the batch (and may hold a live
            # iterator over it); stale slots it passes are dropped with
            # the batch anyway, so compaction just waits for idle.
            return
        data = self._data
        data[:] = [it for it in data if not it[_STATE]]
        batch = self._batch
        batch[:] = [it for it in batch if not it[_STATE]]
        self._stale_est = 0

    # -- dispatch -------------------------------------------------------

    def _refill(self) -> None:
        """Merge arrivals into the sorted batch (descending: earliest
        event last, where ``pop()`` is O(1))."""
        data = self._data
        if data:
            batch = self._batch
            if batch:
                data.extend(batch)
                batch.clear()
            data.sort(reverse=True)
            batch[:] = data
            data.clear()

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None."""
        batch = self._batch
        if self._running:
            # Mid-dispatch: scan without mutating — the drain loop owns
            # the batch iterator.
            best = None
            for item in reversed(batch):
                if not item[_STATE]:
                    best = item[_TIME]
                    break
            for item in self._data:
                if not item[_STATE] and (best is None or item[_TIME] < best):
                    best = item[_TIME]
            return best
        self._refill()
        while batch:
            item = batch[-1]
            if not item[_STATE]:
                return item[_TIME]
            batch.pop()
        return None

    def step(self) -> bool:
        """Pop and run the next live event.  Returns False if queue empty."""
        if self._running:
            raise ReproError("step() re-entered during run()")
        batch = self._batch
        self._refill()
        while batch:
            item = batch.pop()
            if not item[_STATE]:
                break
        else:
            return False
        self._dispatch_one(item)
        return True

    def _dispatch_one(self, item: list) -> None:
        """Fire one slot with full per-event (reference) semantics."""
        item[_STATE] = 2
        self._nfired += 1
        self.current_time = item[_TIME]
        self.events_processed += 1
        self._skip = False
        self._dispatching = True
        hooks = self.hooks
        hot = hooks.hot
        if hot and hooks.on_dispatch_begin:
            ev = item[_HANDLE] or self._handle(item)
            for h in hooks.on_dispatch_begin:
                h(self, ev)
        try:
            a = item[_ARGS]
            if a:
                item[_FN](*a)
            else:
                item[_FN]()
        finally:
            self._dispatching = False
            if hot and hooks.on_dispatch_end:
                ev = item[_HANDLE] or self._handle(item)
                for h in hooks.on_dispatch_end:
                    h(self, ev)
        if self._skip:
            self.events_processed -= 1

    def skip_current(self) -> None:
        """Declare the event being dispatched void: it counts neither
        against a :class:`RunPolicy` budget nor in ``events_processed``.

        The Cth scheduler uses this when a queued resumption finds its
        thread no longer READY (awoken and run through another path) —
        the pre-kernel loop's ``continue``.
        """
        if not self._dispatching:
            raise ReproError("skip_current() outside event dispatch")
        self._skip = True

    def run_batch(self, max_events: Optional[int] = None) -> int:
        """Dispatch up to ``max_events`` events (all, when None) through
        the batched inner loop, *without* the quiescence protocol.

        This is the raw fast path: equivalent to
        ``run(RunPolicy(max_events=..., quiescence=False))`` but named
        for callers (the thread→event compiler's emitted loops) that
        want the batch semantics explicit.  Returns the number of
        events dispatched (skipped events are free).
        """
        if self._running:
            raise ReproError("run_batch() re-entered during run()")
        self._running = True
        try:
            if max_events is None and not self.hooks.hot:
                return self._drain_cold()
            processed, _cut = self._run_guarded(None, max_events)
            return processed
        finally:
            self._running = False

    def run(self, policy: Optional[RunPolicy] = None, *,
            until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        """Dispatch events in order until the policy stops us.

        With no arguments, drains the queue.  ``until``/``max_events``
        are shorthand for the corresponding :class:`RunPolicy` fields.
        Returns the number of events dispatched by this call (skipped
        events are free).

        When the queue drains and the policy allows quiescence
        detection, the ``on_idle`` hooks run first — any of them may
        re-arm work (return True after scheduling) and the loop resumes;
        only when the queue stays empty do the ``on_quiescence`` hooks
        fire and the call return.

        ``run()`` is not re-entrant on a single kernel: calling it (or
        ``run_batch``/``step``) from inside a dispatched callback raises
        :class:`~repro.errors.ReproError` rather than corrupting the
        batch mid-iteration.  Drive nested work by scheduling events.
        """
        if self._running:
            raise ReproError("run() re-entered during run()")
        if policy is None:
            policy = RunPolicy(until=until, max_events=max_events)
        bound = policy.until
        budget = policy.max_events
        processed = 0
        self._running = True
        try:
            while True:
                if bound is None and budget is None and not self.hooks.hot:
                    processed += self._drain_cold()
                else:
                    left = None if budget is None else budget - processed
                    n, cut = self._run_guarded(bound, left)
                    processed += n
                    if cut:
                        return processed
                # Queue drained: quiescence protocol (hooks may re-arm).
                if not policy.quiescence:
                    return processed
                hooks = self.hooks
                pumped = False
                for h in list(hooks.on_idle):
                    if h(self):
                        pumped = True
                if pumped and self._seq - self._nfired - self._ncancelled:
                    continue
                for h in list(hooks.on_quiescence):
                    h(self)
                return processed
        finally:
            self._running = False

    def _drain_cold(self) -> int:
        """The hooks-off, unbounded drain: the throughput path.

        No per-event hook checks, policy evaluation, handle allocation,
        or method calls — just sort, walk, call.  ``_dispatching`` is
        held for the whole drain (batch-granular; see module docstring).
        """
        data = self._data
        batch = self._batch
        processed = 0
        fired = 0
        self._skip = False      # clear residue from a prior skipped event
        self._dispatching = True
        try:
            while True:
                if data:
                    if batch:
                        # Merge an interrupted batch's remainder back in.
                        data.extend(batch)
                        batch.clear()
                    data.sort(reverse=True)
                    batch[:] = data
                    data.clear()
                elif not batch:
                    break
                # Arrivals posted *during* the walk only force a merge
                # when one of them sorts before the next batch item; a
                # same-or-later-time arrival always has a higher seq and
                # therefore belongs after the whole remaining batch.
                # (Self-reposting flows — a compiled loop's back edge
                # posts one event per dispatch — would otherwise re-sort
                # the full batch per event: quadratic at 10⁶ flows.)
                dmin = None
                scanned = 0
                for item in reversed(batch):
                    if item[_STATE]:
                        continue          # cancelled (or consumed) slot
                    if data:
                        n = len(data)
                        if scanned < n:   # scan only the new arrivals
                            for j in range(scanned, n):
                                t = data[j][_TIME]
                                if dmin is None or t < dmin:
                                    dmin = t
                            scanned = n
                        if dmin < item[_TIME]:
                            break         # early arrival: merge, resume
                    self.current_time = item[_TIME]
                    item[_STATE] = 2
                    fired += 1
                    processed += 1
                    a = item[_ARGS]
                    if a:
                        item[_FN](*a)
                    else:
                        item[_FN]()
                    if self._skip:
                        self._skip = False
                        processed -= 1
                else:
                    batch.clear()
                    continue
                # Interrupted mid-batch: keep only live slots (order
                # preserved) and loop back to merge the arrivals.
                batch[:] = [it for it in batch if not it[_STATE]]
        finally:
            self._dispatching = False
            self._nfired += fired
            self.events_processed += processed
        return processed

    def _run_guarded(self, bound: Optional[float],
                     budget: Optional[int]) -> tuple:
        """The instrumented/bounded loop: full per-event reference
        semantics (hooks, ``until``/``max_events`` cuts, per-event
        ``_dispatching``), byte-identical traces to ``refkernel``.

        Returns ``(processed, cut)`` where ``cut`` is True when a
        policy bound stopped the loop with work still queued.
        """
        data = self._data
        batch = self._batch
        hooks = self.hooks
        processed = 0
        # Same lazy-merge discipline as _drain_cold: arrivals are folded
        # in only when one could sort before the next item (strictly
        # earlier time — equal-time arrivals have higher seqs and come
        # after the whole batch), so self-reposting flows stay linear.
        dmin = None
        scanned = 0
        while True:
            if budget is not None and processed >= budget:
                return processed, True
            if data:
                n = len(data)
                if scanned < n:           # scan only the new arrivals
                    for j in range(scanned, n):
                        t = data[j][_TIME]
                        if dmin is None or t < dmin:
                            dmin = t
                    scanned = n
                if not batch or dmin < batch[-1][_TIME]:
                    if batch:
                        data.extend(batch)
                        batch.clear()
                    data.sort(reverse=True)
                    batch[:] = data
                    data.clear()
                    dmin = None
                    scanned = 0
            if not batch:
                return processed, False
            item = batch[-1]
            if item[_STATE]:
                batch.pop()
                continue
            if bound is not None and item[_TIME] > bound:
                return processed, True
            batch.pop()
            item[_STATE] = 2
            self._nfired += 1
            self.current_time = item[_TIME]
            self.events_processed += 1
            self._skip = False
            self._dispatching = True
            hot = hooks.hot
            if hot and hooks.on_dispatch_begin:
                ev = item[_HANDLE] or self._handle(item)
                for h in hooks.on_dispatch_begin:
                    h(self, ev)
            try:
                a = item[_ARGS]
                if a:
                    item[_FN](*a)
                else:
                    item[_FN]()
            finally:
                self._dispatching = False
                if hot and hooks.on_dispatch_end:
                    ev = item[_HANDLE] or self._handle(item)
                    for h in hooks.on_dispatch_end:
                        h(self, ev)
            if self._skip:
                self.events_processed -= 1
            else:
                processed += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<EventKernel {self.name} t={self.current_time:.1f} "
                f"live={self.live} processed={self.events_processed}>")
