"""repro — a reproduction of "Multiple Flows of Control in Migratable
Parallel Programs" (Zheng, Lawlor, Kalé; ICPP 2006).

The package rebuilds, inside a simulated machine, the systems the paper
describes: migratable user-level threads with stack-copying / isomalloc /
memory-aliasing stacks, minimal register-swap context switching, PUP
serialization, swap-global GOT privatization, an event-driven object
runtime with Structured Dagger, Adaptive MPI on migratable threads,
measurement-based load balancing, and a BigSim-style parallel-machine
simulator.

Layering (see DESIGN.md):

* :mod:`repro.vm` / :mod:`repro.sim` — the simulated hardware and OS
  substrate (page frames, address spaces, processors, network, platforms);
* :mod:`repro.core` — the paper's primary contribution (threads, stacks,
  migration);
* :mod:`repro.flows`, :mod:`repro.charm`, :mod:`repro.ampi`,
  :mod:`repro.balance`, :mod:`repro.bigsim` — the comparison mechanisms
  and application-level runtimes;
* :mod:`repro.workloads`, :mod:`repro.bench` — evaluation workloads and
  the per-table/per-figure benchmark harness.
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
