"""Flow analysis: suspend-point CFGs, interprocedural suspends inference,
and the thread→event compilability report.

ROADMAP item 2 wants Cth thread workloads mechanically compiled to
event-driven continuations (the CPC transformation, see PAPERS.md).  A
compiler needs a static front end that decides *which* thread bodies are
compilable and *why* the rest are not:

* :mod:`repro.analysis.flow.cfg` — per-function control-flow graphs over
  the Python AST, with basic blocks, back edges, and explicit suspend
  nodes (``yield "yield"`` / ``yield "suspend"`` / ``yield from`` per the
  :class:`repro.core.thread.UThread` body protocol);
* :mod:`repro.analysis.flow.callgraph` — a module-set call graph with a
  fixed-point *suspends* inference (the CPC "cps" attribute): a function
  suspends if it yields a scheduler directive or ``yield from``-delegates
  to a suspending callee, and an unknown callee is soundly assumed
  suspending;
* :mod:`repro.analysis.flow.compilability` — classifies every thread
  body as COMPILABLE / NEEDS-REWRITE / OPAQUE, each NEEDS-REWRITE
  carrying the precise blocker and source location;
* :mod:`repro.analysis.flow.report` — the ``flowreport`` CLI and the
  byte-stable JSON document checked in at ``results/flow_report.json``.

The lint rules FLW001-FLW003 (see :mod:`repro.analysis.rules`) are the
per-module faces of the same machinery.
"""

from __future__ import annotations

from repro.analysis.flow.cfg import (
    BasicBlock,
    CapturedMutation,
    FunctionCFG,
    SuspendPoint,
    build_cfg,
    captured_mutations,
    classify_yield,
)
from repro.analysis.flow.callgraph import (
    CallGraph,
    FuncInfo,
    runtime_interface,
)
from repro.analysis.flow.compilability import (
    COMPILABLE,
    NEEDS_REWRITE,
    OPAQUE,
    Blocker,
    BodyReport,
    classify_bodies,
)
from repro.analysis.flow.report import (
    build_flow_report,
    render_flow_human,
    render_flow_json,
)

__all__ = [
    "BasicBlock",
    "Blocker",
    "BodyReport",
    "COMPILABLE",
    "CallGraph",
    "CapturedMutation",
    "FuncInfo",
    "FunctionCFG",
    "NEEDS_REWRITE",
    "OPAQUE",
    "SuspendPoint",
    "build_cfg",
    "build_flow_report",
    "captured_mutations",
    "classify_bodies",
    "classify_yield",
    "render_flow_human",
    "render_flow_json",
    "runtime_interface",
]
