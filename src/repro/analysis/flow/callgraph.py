"""Module-set call graph with fixed-point *suspends* inference.

The CPC compiler's key interprocedural pass decides which functions are
"cps" — able to suspend the flow of control — by propagating the
attribute up the call graph (Kerneis & Chroboczek, PAPERS.md).  The
analogue here: a function **suspends** when

* its own body yields (a scheduler directive, or any value at all —
  either way the generator hands control back to the scheduler), or
* it ``yield from``-delegates to a suspending callee.

Suspension propagates *only* through ``yield from``: a plain call to a
generator function just builds a generator object and discards it — the
silent-no-op bug class FLW001 exists to catch — so plain call edges do
not carry the attribute.

Resolution is name-based and sound: a delegation target that cannot be
resolved (higher-order values, attribute chains on unknown objects) is
**assumed suspending**.  Two fixed points are computed — one seeding
unknowns as suspending (*sound*), one as not (*known*) — and a function
suspending soundly but not knownly is flagged ``assumed``, which is what
the compilability report surfaces as OPAQUE.

Calls on the conventional runtime receivers (``mpi.recv(...)``,
``comm.barrier(...)``, ``th.charge(...)``) resolve against
:func:`runtime_interface`, a parsed snapshot of the AMPI/thread runtime
classes mapping each method to its inferred suspends bit.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.analysis.astutil import FuncDef, call_name, walk_shallow
from repro.analysis.flow.cfg import classify_yield

__all__ = [
    "CallGraph",
    "FuncInfo",
    "Resolution",
    "runtime_interface",
]

#: Conventional receiver variable name -> runtime class it holds.
#: ``mpi`` is the AmpiContext handed to rank mains, ``ctx`` its name
#: inside the runtime itself, ``comm``/``world`` are Communicators, and
#: ``th``/``thread`` the UThread handle of a plain thread body.
KNOWN_RECEIVERS = {
    "mpi": "AmpiContext",
    "ctx": "AmpiContext",
    "comm": "Communicator",
    "world": "Communicator",
    "th": "UThread",
    "thread": "UThread",
}

#: The runtime modules whose classes form the suspend interface.
RUNTIME_MODULES = (
    "repro.ampi.context",
    "repro.ampi.communicator",
    "repro.core.thread",
)

#: The classes exported by those modules that bodies hold receivers to.
RUNTIME_CLASSES = ("AmpiContext", "Communicator", "UThread")


@dataclass(frozen=True)
class Resolution:
    """Where one call/delegation target resolved to.

    *kind* is ``"func"`` (a function in the graph, ``key`` set),
    ``"interface"`` (a runtime class method, ``suspends`` set), or
    ``"unknown"`` (unresolvable; soundly assumed suspending).
    """

    kind: str
    label: str
    key: Optional[str] = None
    suspends: Optional[bool] = None


@dataclass
class FuncInfo:
    """One function in the graph, keyed ``"path::qualname"``."""

    key: str
    path: str
    qualname: str
    name: str
    line: int
    node: FuncDef
    #: Simple name of the directly enclosing class, if this is a method.
    cls: Optional[str]
    #: Key of the lexically enclosing function, if nested.
    parent: Optional[str]
    #: Nested defs bound in this function's local scope: name -> key.
    children: Dict[str, str] = field(default_factory=dict)
    is_generator: bool = False
    #: (line, directive) for each recognised scheduler-directive yield.
    directive_yields: List[Tuple[int, str]] = field(default_factory=list)
    #: Lines of bare (non-directive, non-delegating) yields.
    bare_yields: List[int] = field(default_factory=list)
    #: The raw ``yield from`` nodes, resolved at finalize().
    delegations: List[ast.YieldFrom] = field(default_factory=list)
    resolved: List[Tuple[ast.YieldFrom, Resolution]] = \
        field(default_factory=list)
    #: Sound suspends bit (unknown callees assumed suspending).
    suspends: bool = False
    #: Suspends bit provable without the unknown-callee assumption.
    known: bool = False
    #: suspends and not known: the bit rests on an unresolved callee.
    assumed: bool = False
    #: Provably part of the *scheduler protocol*: yields a directive
    #: itself or delegates (transitively) to an interface primitive.
    #: Narrower than ``known`` — a generator of plain values (a report
    #: emitter, a rule's check()) is known-suspending in the
    #: lost-stream sense but does not speak the protocol.
    protocol: bool = False
    #: Human-readable one-line justification of the suspends bit.
    why: str = ""


@dataclass
class _ModuleScope:
    path: str
    dotted: str
    #: Module-level function defs: name -> key.
    top: Dict[str, str] = field(default_factory=dict)
    #: ``from X import Y [as Z]``: local name -> (dotted module, orig).
    imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def _dotted_name(path: str) -> str:
    """``src/repro/workloads/stencil.py`` -> ``repro.workloads.stencil``."""
    p = path.replace("\\", "/")
    if p.endswith(".py"):
        p = p[:-3]
    parts = [seg for seg in p.split("/") if seg]
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class CallGraph:
    """Functions of a module set, their delegation edges, suspends bits."""

    def __init__(self, interface: Optional[Dict[str, Dict[str, bool]]]
                 = None) -> None:
        #: class name -> {method name -> suspends?}; None means "use the
        #: parsed runtime interface" (the common case).
        self.interface = (runtime_interface() if interface is None
                          else interface)
        self.funcs: Dict[str, FuncInfo] = {}
        self._modules: Dict[str, _ModuleScope] = {}
        self._by_dotted: Dict[str, str] = {}
        #: class simple name -> {method -> key}; first definition wins.
        self._class_index: Dict[str, Dict[str, str]] = {}
        self._finalized = False

    # -- construction --------------------------------------------------

    @classmethod
    def from_paths(cls, paths, *, relative_to: Optional[str] = None,
                   interface=None) -> "CallGraph":
        """Parse ``.py`` files (or trees of them) into one graph."""
        import os
        from repro.analysis.core import collect_files
        graph = cls(interface=interface)
        for path in collect_files(paths):
            rel = (os.path.relpath(path, relative_to) if relative_to
                   else path).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError:
                continue  # the MIG000 parse-error finding owns this case
            graph.add_module(rel, tree)
        graph.finalize()
        return graph

    @classmethod
    def from_context(cls, ctx, interface=None) -> "CallGraph":
        """Single-module graph for a rule, cached on the ModuleContext."""
        cached = getattr(ctx, "_flow_callgraph", None)
        if cached is not None:
            return cached
        graph = cls(interface=interface)
        graph.add_module(ctx.path, ctx.tree)
        graph.finalize()
        ctx._flow_callgraph = graph
        return graph

    def add_module(self, path: str, tree: ast.Module) -> None:
        if self._finalized:
            raise RuntimeError("CallGraph already finalized")
        module = _ModuleScope(path=path, dotted=_dotted_name(path))
        self._modules[path] = module
        if module.dotted:
            self._by_dotted.setdefault(module.dotted, path)
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = \
                        (node.module, alias.name)
        self._walk(tree.body, module, parent=None, cls_name=None, prefix="")

    def _walk(self, stmts, module: _ModuleScope, parent: Optional[str],
              cls_name: Optional[str], prefix: str) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_func(stmt, module, parent, cls_name, prefix)
            elif isinstance(stmt, ast.ClassDef):
                self._walk(stmt.body, module, parent,
                           cls_name=stmt.name,
                           prefix=f"{prefix}{stmt.name}.")
            else:
                # Defs under module/function-level if/try/with/loops
                # still bind in the enclosing scope.
                for sub in (getattr(stmt, "body", []),
                            getattr(stmt, "orelse", []),
                            getattr(stmt, "finalbody", [])):
                    if sub and isinstance(sub[0], ast.stmt):
                        self._walk(sub, module, parent, cls_name, prefix)
                for handler in getattr(stmt, "handlers", []):
                    self._walk(handler.body, module, parent,
                               cls_name, prefix)

    def _add_func(self, node: FuncDef, module: _ModuleScope,
                  parent: Optional[str], cls_name: Optional[str],
                  prefix: str) -> None:
        qual = f"{prefix}{node.name}"
        key = f"{module.path}::{qual}"
        info = FuncInfo(key=key, path=module.path, qualname=qual,
                        name=node.name, line=node.lineno, node=node,
                        cls=cls_name, parent=parent)
        for y in walk_shallow(node):
            if isinstance(y, ast.YieldFrom):
                info.delegations.append(y)
            elif isinstance(y, ast.Yield):
                kind, directive = classify_yield(y)
                if kind == "directive":
                    info.directive_yields.append((y.lineno, directive))
                else:
                    info.bare_yields.append(y.lineno)
        info.is_generator = bool(info.delegations or info.directive_yields
                                 or info.bare_yields)
        self.funcs[key] = info
        if parent is not None:
            self.funcs[parent].children.setdefault(node.name, key)
        elif cls_name is not None:
            self._class_index.setdefault(cls_name, {}) \
                .setdefault(node.name, key)
        else:
            module.top.setdefault(node.name, key)
        self._walk(node.body, module, parent=key, cls_name=None,
                   prefix=f"{qual}.")

    # -- resolution ----------------------------------------------------

    def _resolve_bare(self, name: str, within: FuncInfo) \
            -> Optional[FuncInfo]:
        node: Optional[FuncInfo] = within
        while node is not None:
            child = node.children.get(name)
            if child is not None:
                return self.funcs[child]
            node = self.funcs.get(node.parent) if node.parent else None
        module = self._modules.get(within.path)
        if module is None:
            return None
        if name in module.top:
            return self.funcs[module.top[name]]
        if name in module.imports:
            dotted, orig = module.imports[name]
            target = self._by_dotted.get(dotted)
            if target is not None:
                tkey = self._modules[target].top.get(orig)
                if tkey is not None:
                    return self.funcs[tkey]
        return None

    def _resolve_method(self, cls: str, meth: str, label: str) -> Resolution:
        methods = self._class_index.get(cls)
        if methods and meth in methods:
            return Resolution(kind="func", label=label, key=methods[meth])
        iface = self.interface.get(cls)
        if iface is not None and meth in iface:
            return Resolution(kind="interface", label=f"{cls}.{meth}",
                              suspends=iface[meth])
        return Resolution(kind="unknown", label=label)

    def resolve_call(self, call: ast.Call, within: FuncInfo) -> Resolution:
        """Resolve one call's target from inside ``within``'s scope."""
        name = call_name(call)
        if not name:
            return Resolution(kind="unknown", label="<expr>")
        if "." not in name:
            target = self._resolve_bare(name, within)
            if target is not None:
                return Resolution(kind="func", label=name, key=target.key)
            return Resolution(kind="unknown", label=name)
        receiver, meth = name.split(".", 1)
        if receiver == "self" and within.cls is not None:
            return self._resolve_method(within.cls, meth, name)
        if receiver in KNOWN_RECEIVERS:
            return self._resolve_method(KNOWN_RECEIVERS[receiver],
                                        meth, name)
        return Resolution(kind="unknown", label=name)

    def resolution_suspends(self, res: Resolution) -> Tuple[bool, bool]:
        """``(sound, known)`` suspends bits of a resolution target."""
        if res.kind == "func":
            f = self.funcs[res.key]
            return f.suspends, f.known
        if res.kind == "interface":
            return bool(res.suspends), bool(res.suspends)
        return True, False  # unknown: soundly assumed suspending

    def resolution_protocol(self, res: Resolution) -> bool:
        """Is the target provably a scheduler-protocol participant?"""
        if res.kind == "func":
            return self.funcs[res.key].protocol
        if res.kind == "interface":
            return bool(res.suspends)
        return False

    # -- inference -----------------------------------------------------

    def finalize(self) -> "CallGraph":
        """Resolve every delegation and run both suspends fixed points."""
        if self._finalized:
            return self
        self._finalized = True
        for f in self.funcs.values():
            for y in f.delegations:
                if isinstance(y.value, ast.Call):
                    res = self.resolve_call(y.value, f)
                else:
                    res = Resolution(kind="unknown", label="<expr>")
                f.resolved.append((y, res))
        # Seeds: own yields make a generator; its directive stream is
        # real either way, so any yield at all sets both bits.
        for f in self.funcs.values():
            if f.directive_yields:
                f.known = f.suspends = True
                line, directive = f.directive_yields[0]
                f.why = f'yields "{directive}" at line {line}'
            elif f.bare_yields:
                f.known = f.suspends = True
                f.why = f"bare yield at line {f.bare_yields[0]}"
            for y, res in f.resolved:
                if res.kind == "interface" and res.suspends:
                    f.known = f.suspends = True
                    f.why = f.why or (f"delegates to suspending "
                                      f"{res.label} at line {y.lineno}")
                elif res.kind == "unknown" and not f.suspends:
                    f.suspends = True
                    f.why = (f"delegates to unresolved {res.label!r} at "
                             f"line {y.lineno} — assumed suspending")
        # Fixed points over resolved func->func delegation edges.
        for attr in ("known", "suspends"):
            changed = True
            while changed:
                changed = False
                for f in self.funcs.values():
                    if getattr(f, attr):
                        continue
                    for y, res in f.resolved:
                        if res.kind != "func":
                            continue
                        g = self.funcs[res.key]
                        if getattr(g, attr):
                            setattr(f, attr, True)
                            if attr == "suspends":
                                f.why = (f"delegates to suspending "
                                         f"{g.qualname} at line {y.lineno}")
                            changed = True
                            break
        # Third fixed point: protocol membership (directive-suspending).
        for f in self.funcs.values():
            f.protocol = bool(f.directive_yields) or any(
                res.kind == "interface" and res.suspends
                for _y, res in f.resolved)
        changed = True
        while changed:
            changed = False
            for f in self.funcs.values():
                if f.protocol:
                    continue
                if any(res.kind == "func"
                       and self.funcs[res.key].protocol
                       for _y, res in f.resolved):
                    f.protocol = True
                    changed = True
        for f in self.funcs.values():
            f.assumed = f.suspends and not f.known
        return self

    # -- queries -------------------------------------------------------

    def functions_in(self, path: str) -> List[FuncInfo]:
        return sorted((f for f in self.funcs.values() if f.path == path),
                      key=lambda f: (f.line, f.qualname))

    def lookup(self, path: str, qualname: str) -> Optional[FuncInfo]:
        return self.funcs.get(f"{path}::{qualname}")

    def suspending_cycles(self) -> List[Tuple[str, ...]]:
        """SCCs of the delegation graph that both loop and suspend.

        A thread body recursing through a suspending cycle cannot be
        split into a finite set of continuations, so each cycle is a
        compilation blocker for every body that reaches it.
        """
        edges: Dict[str, List[str]] = {k: [] for k in self.funcs}
        for f in self.funcs.values():
            for _y, res in f.resolved:
                if res.kind == "func":
                    edges[f.key].append(res.key)
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        sccs: List[List[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(edges[root]))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack[w] = True
                        work.append((w, iter(edges[w])))
                        advanced = True
                        break
                    if on_stack.get(w):
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
                if low[v] == index[v]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        scc.append(w)
                        if w == v:
                            break
                    sccs.append(scc)

        for key in sorted(edges):
            if key not in index:
                strongconnect(key)
        out: List[Tuple[str, ...]] = []
        for scc in sccs:
            looping = len(scc) > 1 or scc[0] in edges[scc[0]]
            if looping and any(self.funcs[k].suspends for k in scc):
                out.append(tuple(sorted(scc)))
        return sorted(out)


@lru_cache(maxsize=1)
def runtime_interface() -> Dict[str, Dict[str, bool]]:
    """Parse the AMPI/thread runtime into ``{class: {method: suspends}}``.

    Reads the installed source of :data:`RUNTIME_MODULES` (no import
    executed — ``find_spec`` only), builds a private :class:`CallGraph`
    over just those modules, and extracts the inferred suspends bit for
    every directly defined method of :data:`RUNTIME_CLASSES`.  If the
    runtime cannot be located the interface is empty and every receiver
    call resolves unknown — degraded but still sound.
    """
    graph = CallGraph(interface={})
    for modname in RUNTIME_MODULES:
        try:
            spec = importlib.util.find_spec(modname)
        except (ImportError, ValueError):  # pragma: no cover - env-specific
            spec = None
        if spec is None or not spec.origin:  # pragma: no cover
            continue
        try:
            with open(spec.origin, "r", encoding="utf-8") as fh:
                tree = ast.parse(fh.read(), filename=spec.origin)
        except (OSError, SyntaxError):  # pragma: no cover - env-specific
            continue
        graph.add_module(modname.replace(".", "/") + ".py", tree)
    graph.finalize()
    out: Dict[str, Dict[str, bool]] = {}
    for f in graph.funcs.values():
        if f.cls in RUNTIME_CLASSES and f.parent is None:
            out.setdefault(f.cls, {})[f.name] = f.suspends
    return out
