"""Per-function control-flow graphs with explicit suspend nodes.

A thread body in this codebase is a Python generator driven by the
scheduler (:meth:`repro.core.thread.UThread.step`): ``yield "yield"``
and ``yield "suspend"`` are scheduler directives, ``yield ("io", ns)``
charges simulated time, and ``yield from helper(...)`` delegates the
whole directive stream to a suspending callee.  The CPC transformation
(PAPERS.md) splits a function at exactly these points, so the CFG here
records every yield as an explicit :class:`SuspendPoint` annotated with
the *protected regions* (``with`` blocks, ``try/finally``, ``except``
handlers) that enclose it — the constructs a splitting compiler cannot
cut through.

The graph is statement-granular: each :class:`BasicBlock` holds source
line numbers, and edges follow Python's structured control flow
(``if``/``while``/``for``/``try``/``match``, plus ``break``,
``continue``, ``return``, ``raise``).  Loop back edges are recorded
separately in :attr:`FunctionCFG.back_edges` — the compiler turns each
into an event re-post.  Nested ``def``/``lambda`` scopes are *not*
descended into: they are separate functions with their own CFGs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.astutil import call_name, is_generator, local_names

__all__ = [
    "BasicBlock",
    "CapturedMutation",
    "FunctionCFG",
    "SuspendPoint",
    "build_cfg",
    "captured_mutations",
    "classify_yield",
]

#: The scheduler directive strings a body may yield directly
#: (see ``repro.core.scheduler.Scheduler._handle``).
DIRECTIVE_STRINGS = ("yield", "suspend", "exit")

#: Tuple directives: ``("io", ns)`` charges simulated nanoseconds.
DIRECTIVE_TUPLE_TAGS = ("io",)


def classify_yield(node: ast.expr) -> Tuple[str, Optional[str]]:
    """Classify a ``Yield``/``YieldFrom`` node for the UThread protocol.

    Returns ``(kind, directive)`` where *kind* is one of:

    * ``"delegate"`` — ``yield from``: the suspend behaviour is the
      callee's (interprocedural; see :mod:`.callgraph`);
    * ``"directive"`` — a recognised scheduler directive (``"yield"``,
      ``"suspend"``, ``"exit"``, or an ``("io", ns)`` tuple), with
      *directive* naming which one;
    * ``"bare"`` — any other yielded value.  The scheduler forwards
      unknown directives to ``directive_handler`` (the AMPI layer), so
      a bare yield in a plain thread body is a protocol bug and an
      unconditional compilation blocker.
    """
    if isinstance(node, ast.YieldFrom):
        return "delegate", None
    value = node.value
    if value is None:
        return "bare", None
    if isinstance(value, ast.Constant) and value.value in DIRECTIVE_STRINGS:
        return "directive", value.value
    if (isinstance(value, ast.Tuple) and value.elts
            and isinstance(value.elts[0], ast.Constant)
            and value.elts[0].value in DIRECTIVE_TUPLE_TAGS):
        return "directive", value.elts[0].value
    return "bare", None


@dataclass
class SuspendPoint:
    """One yield in a function body, i.e. one place the compiler cuts."""

    line: int
    col: int
    #: ``"directive"`` | ``"delegate"`` | ``"bare"`` (see classify_yield).
    kind: str
    #: The directive string for kind == "directive" (e.g. ``"suspend"``).
    directive: Optional[str]
    #: Source text-ish label of the delegation target for kind ==
    #: "delegate" (dotted call name, or ``"<expr>"``).
    target: Optional[str]
    #: Innermost-last tuple of enclosing unsplittable constructs, drawn
    #: from {"with", "try/finally", "except"}.  Empty means the suspend
    #: sits in straight-line splittable code.
    protected: Tuple[str, ...]
    #: The basic block this suspend terminates.
    block: int


@dataclass
class BasicBlock:
    """A maximal straight-line run of statements (suspends split blocks)."""

    id: int
    label: str
    lines: List[int] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


@dataclass
class FunctionCFG:
    """CFG of one function: blocks, loop back edges, suspend points."""

    name: str
    line: int
    is_generator: bool
    blocks: Dict[int, BasicBlock]
    entry: int
    exit: int
    #: (from_block, to_block) pairs closing a loop (body end / continue
    #: back to the loop header).
    back_edges: List[Tuple[int, int]]
    suspends: List[SuspendPoint]

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def directive_suspends(self) -> List[SuspendPoint]:
        return [s for s in self.suspends if s.kind == "directive"]

    def delegations(self) -> List[SuspendPoint]:
        return [s for s in self.suspends if s.kind == "delegate"]

    def bare_yields(self) -> List[SuspendPoint]:
        return [s for s in self.suspends if s.kind == "bare"]

    def protected_suspends(self) -> List[SuspendPoint]:
        return [s for s in self.suspends if s.protected]


class _Builder:
    """Structured walk of one function body; no descent into nested scopes."""

    def __init__(self, func: ast.AST) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.back_edges: List[Tuple[int, int]] = []
        self.suspends: List[SuspendPoint] = []
        self.protect: List[str] = []
        #: (header_block, exit_block) per enclosing loop, innermost last.
        self.loops: List[Tuple[int, int]] = []
        self.entry = self._new("entry")
        self.exit = self._new("exit")
        self.current = self.entry
        self._build(func)

    # -- graph plumbing ------------------------------------------------

    def _new(self, label: str) -> int:
        bid = len(self.blocks)
        self.blocks[bid] = BasicBlock(id=bid, label=label)
        return bid

    def _edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def _line(self, node: ast.AST) -> None:
        line = getattr(node, "lineno", None)
        if line is not None:
            block = self.blocks[self.current]
            if not block.lines or block.lines[-1] != line:
                block.lines.append(line)

    # -- suspend detection --------------------------------------------

    def _yields_in(self, node: ast.AST) -> Iterator[ast.expr]:
        """Yield nodes lexically inside *node*, skipping nested scopes.

        Comprehensions cannot contain ``yield`` (SyntaxError since 3.8)
        and lambdas never could, so skipping Lambda/def/class interiors
        is exact, not an approximation.
        """
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop(0)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            if isinstance(child, (ast.Yield, ast.YieldFrom)):
                yield child
            stack.extend(ast.iter_child_nodes(child))

    def _delegate_target(self, node: ast.YieldFrom) -> str:
        value = node.value
        if isinstance(value, ast.Call):
            name = call_name(value)
            if name:
                return name
        return "<expr>"

    def _scan(self, node: ast.AST) -> None:
        """Record suspend points in *node* and split the block at each."""
        found = sorted(self._yields_in(node),
                       key=lambda y: (y.lineno, y.col_offset))
        for y in found:
            kind, directive = classify_yield(y)
            target = (self._delegate_target(y)
                      if isinstance(y, ast.YieldFrom) else None)
            self.suspends.append(SuspendPoint(
                line=y.lineno, col=y.col_offset, kind=kind,
                directive=directive, target=target,
                protected=tuple(self.protect), block=self.current))
            resume = self._new("resume")
            self._edge(self.current, resume)
            self.current = resume

    def _stmt(self, node: ast.stmt) -> None:
        self._line(node)
        self._scan(node)

    # -- statement dispatch -------------------------------------------

    def _build(self, func: ast.AST) -> None:
        self._body(func.body)
        self._edge(self.current, self.exit)

    def _body(self, stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            self._visit(stmt)

    def _visit(self, node: ast.stmt) -> None:
        method = getattr(self, "_visit_" + type(node).__name__, None)
        if method is not None:
            method(node)
        else:
            self._stmt(node)

    def _visit_FunctionDef(self, node: ast.stmt) -> None:
        # A nested def/class is one opaque binding statement here; its
        # interior gets its own CFG if anyone asks for one.
        self._line(node)

    _visit_AsyncFunctionDef = _visit_FunctionDef
    _visit_ClassDef = _visit_FunctionDef

    def _visit_Return(self, node: ast.Return) -> None:
        self._line(node)
        if node.value is not None:
            self._scan(node)
        self._edge(self.current, self.exit)
        self.current = self._new("unreachable")

    def _visit_Raise(self, node: ast.Raise) -> None:
        # Coarse: a raise leaves the function (handler edges are drawn
        # from the try entry in _visit_Try, not per-raise).
        self._stmt(node)
        self._edge(self.current, self.exit)
        self.current = self._new("unreachable")

    def _visit_Break(self, node: ast.Break) -> None:
        self._line(node)
        if self.loops:
            self._edge(self.current, self.loops[-1][1])
        self.current = self._new("unreachable")

    def _visit_Continue(self, node: ast.Continue) -> None:
        self._line(node)
        if self.loops:
            header = self.loops[-1][0]
            self._edge(self.current, header)
            self.back_edges.append((self.current, header))
        self.current = self._new("unreachable")

    def _visit_If(self, node: ast.If) -> None:
        self._line(node)
        self._scan(node.test)  # a yield in the test suspends pre-branch
        branch = self.current
        join = self._new("join")
        then = self._new("then")
        self._edge(branch, then)
        self.current = then
        self._body(node.body)
        self._edge(self.current, join)
        if node.orelse:
            other = self._new("else")
            self._edge(branch, other)
            self.current = other
            self._body(node.orelse)
            self._edge(self.current, join)
        else:
            self._edge(branch, join)
        self.current = join

    def _loop(self, node, header_label: str) -> None:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._line(node)
            self._scan(node.iter)  # the iterable is evaluated once, up front
        header = self._new(header_label)
        self._edge(self.current, header)
        self.current = header
        if isinstance(node, ast.While):
            self._line(node)
            self._scan(node.test)
        after = self._new("loop-exit")
        body = self._new("loop-body")
        # After a while-test suspend, self.current is the resume block.
        self._edge(self.current, body)
        self._edge(self.current, after)
        self.loops.append((header, after))
        self.current = body
        self._body(node.body)
        self._edge(self.current, header)
        self.back_edges.append((self.current, header))
        self.loops.pop()
        if node.orelse:
            # for/while-else runs on normal exhaustion; keep it on the
            # exit path without a dedicated else block.
            self.current = after
            self._body(node.orelse)
            after = self.current
        self.current = after

    def _visit_While(self, node: ast.While) -> None:
        self._loop(node, "while-header")

    def _visit_For(self, node: ast.For) -> None:
        self._loop(node, "for-header")

    _visit_AsyncFor = _visit_For

    def _visit_With(self, node) -> None:
        self._line(node)
        for item in node.items:
            self._scan(item.context_expr)
        inner = self._new("with-body")
        self._edge(self.current, inner)
        self.current = inner
        self.protect.append("with")
        self._body(node.body)
        self.protect.pop()

    _visit_AsyncWith = _visit_With

    def _visit_Try(self, node) -> None:
        self._line(node)
        has_finally = bool(node.finalbody)
        if has_finally:
            self.protect.append("try/finally")
        entry = self.current
        body = self._new("try-body")
        self._edge(entry, body)
        self.current = body
        self._body(node.body)
        self._body(node.orelse)
        tails = [self.current]
        for handler in node.handlers:
            hb = self._new("except")
            # Coarse: the exception may fire anywhere in the body, so
            # the handler edge leaves the try entry block.
            self._edge(body, hb)
            self.current = hb
            self.protect.append("except")
            self._body(handler.body)
            self.protect.pop()
            tails.append(self.current)
        if has_finally:
            join = self._new("finally")
            for tail in tails:
                self._edge(tail, join)
            self.current = join
            self._body(node.finalbody)
            self.protect.pop()
        else:
            join = self._new("join")
            for tail in tails:
                self._edge(tail, join)
            self.current = join

    _visit_TryStar = _visit_Try

    def _visit_Match(self, node) -> None:
        self._line(node)
        self._scan(node.subject)
        subject = self.current
        join = self._new("join")
        for case in node.cases:
            arm = self._new("case")
            self._edge(subject, arm)
            self.current = arm
            self._body(case.body)
            self._edge(self.current, join)
        self._edge(subject, join)  # no case matched
        self.current = join


def build_cfg(func: ast.AST) -> FunctionCFG:
    """Build the :class:`FunctionCFG` for one ``def`` (or lambda) node."""
    if isinstance(func, ast.Lambda):
        # A lambda body cannot contain yield; its CFG is trivial.
        builder = _Builder.__new__(_Builder)
        builder.blocks = {}
        builder.back_edges = []
        builder.suspends = []
        builder.protect = []
        builder.loops = []
        builder.entry = builder._new("entry")
        builder.exit = builder._new("exit")
        builder.current = builder.entry
        builder._edge(builder.entry, builder.exit)
        return FunctionCFG(name="<lambda>", line=func.lineno,
                           is_generator=False, blocks=builder.blocks,
                           entry=builder.entry, exit=builder.exit,
                           back_edges=[], suspends=[])
    builder = _Builder(func)
    return FunctionCFG(
        name=getattr(func, "name", "<lambda>"),
        line=func.lineno,
        is_generator=is_generator(func),
        blocks=builder.blocks,
        entry=builder.entry,
        exit=builder.exit,
        back_edges=builder.back_edges,
        suspends=builder.suspends,
    )


@dataclass
class CapturedMutation:
    """A closure-captured local rebound across a suspend point.

    The compiled form of a thread body stores its locals in a
    continuation record; a nested ``def``/``lambda`` that closes over a
    local which is *rebound* after a suspend observes either the old or
    the new binding depending on where the compiler materialises the
    cell — exactly the hazard CPC forbids by banning ``&local`` escape
    across cps calls.
    """

    name: str
    closure_line: int
    store_line: int
    suspend_line: int


def _free_loads(func: ast.AST) -> set:
    """Names loaded somewhere inside *func* but not bound by it."""
    bound = set(local_names(func))
    loads = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loads.add(node.id)
    return loads - bound


def captured_mutations(func: ast.AST) -> List[CapturedMutation]:
    """Find closure captures of locals rebound across a suspend point.

    Lexical approximation: the local must have a binding at or before
    some suspend line (a parameter counts) *and* a rebinding after it,
    and some nested scope must read it.  Sound for the straight-line
    bodies this repo compiles; loops can order lines differently, but a
    loop whose body both suspends and rebinds a captured name still has
    a store lexically after the first suspend line.
    """
    suspend_lines = sorted({y.lineno for y in ast.walk(func)
                            if isinstance(y, (ast.Yield, ast.YieldFrom))})
    if not suspend_lines:
        return []
    args = getattr(func, "args", None)
    params = set()
    if args is not None:
        for a in (args.posonlyargs + args.args + args.kwonlyargs
                  + ([args.vararg] if args.vararg else [])
                  + ([args.kwarg] if args.kwarg else [])):
            params.add(a.arg)
    stores: Dict[str, List[int]] = {}
    nested: List[ast.AST] = []
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            nested.append(node)
            continue
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            stores.setdefault(node.id, []).append(node.lineno)
        stack.extend(ast.iter_child_nodes(node))
    if not nested:
        return []
    out: List[CapturedMutation] = []
    local = set(stores) | params
    for closure in nested:
        for name in sorted(_free_loads(closure) & local):
            lines = stores.get(name, [])
            for s in suspend_lines:
                before = name in params or any(l <= s for l in lines)
                after = [l for l in lines if l > s]
                if before and after:
                    out.append(CapturedMutation(
                        name=name, closure_line=closure.lineno,
                        store_line=min(after), suspend_line=s))
                    break
    out.sort(key=lambda m: (m.suspend_line, m.name))
    return out
