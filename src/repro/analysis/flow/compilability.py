"""Classify thread bodies for the thread→event compilation (ROADMAP 2).

A body is the unit the future compiler transforms: a generator function
whose first parameter is ``th``/``thread``/``mpi``, driven by the
scheduler through the UThread directive protocol.  For each body found
under the scan roots this module computes the delegation closure (every
function its directive stream can flow through), then classifies:

* **COMPILABLE** — every suspend point in the closure sits in
  splittable straight-line/loop/branch code and every delegation
  resolves to a known callee or a runtime interface primitive;
* **NEEDS-REWRITE** — at least one :class:`Blocker`: a suspend inside
  ``try/finally`` or ``with``, a suspend under an ``except`` handler, a
  bare yield of a non-directive value, a closure capture rebound across
  a suspend point, or recursion through a suspending cycle.  Each
  blocker carries the construct kind, the rule id (FLW002), and the
  exact source location — the rewrite worklist for the human;
* **OPAQUE** — no blocker found, but some delegation target could not
  be resolved, so the suspend surface is soundly unknown (the CPC
  "unknown callee ⇒ assume cps" case).

The runtime interface methods (``mpi.recv`` and friends) are treated as
atomic suspension primitives, exactly as CPC treats its cps runtime:
the compiler will emit an event op for the whole call, so their
*implementation* CFGs are not part of any body's closure.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.astutil import THREAD_PARAM_NAMES
from repro.analysis.flow.callgraph import CallGraph, FuncInfo
from repro.analysis.flow.cfg import (
    FunctionCFG,
    build_cfg,
    captured_mutations,
)

__all__ = [
    "Blocker",
    "BodyReport",
    "COMPILABLE",
    "NEEDS_REWRITE",
    "OPAQUE",
    "SCAN_ROOTS",
    "classify_bodies",
    "thread_bodies",
]

COMPILABLE = "COMPILABLE"
NEEDS_REWRITE = "NEEDS-REWRITE"
OPAQUE = "OPAQUE"

#: Repo-relative roots whose thread bodies the report must classify.
SCAN_ROOTS = (
    "examples",
    "src/repro/chaos/workloads.py",
    "src/repro/flows",
    "src/repro/workloads",
)

#: protection label (cfg.SuspendPoint.protected) -> blocker kind.
_PROTECTION_KIND = {
    "try/finally": "suspend-in-finally",
    "with": "suspend-in-with",
    "except": "suspend-under-except",
}


@dataclass(frozen=True)
class Blocker:
    """One construct that stops a body from being compiled."""

    #: "suspend-in-finally" | "suspend-in-with" | "suspend-under-except"
    #: | "bare-yield" | "closure-across-suspend" | "suspending-recursion"
    kind: str
    rule: str
    path: str
    line: int
    func: str
    detail: str

    def to_dict(self) -> dict:
        return {"kind": self.kind, "rule": self.rule, "path": self.path,
                "line": self.line, "func": self.func, "detail": self.detail}


@dataclass
class BodyReport:
    """Classification of one thread body plus the evidence."""

    path: str
    qualname: str
    line: int
    classification: str
    #: Own-CFG suspend point counts (directive / delegation / bare).
    directives: int
    delegations: int
    #: Every function the body's directive stream flows through
    #: ("path::qualname", sorted; includes the body itself).
    closure: List[str]
    blockers: List[Blocker] = field(default_factory=list)
    #: Unresolved delegations: "path:line: target" strings.
    opaque: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "qualname": self.qualname,
            "line": self.line,
            "classification": self.classification,
            "directives": self.directives,
            "delegations": self.delegations,
            "closure": list(self.closure),
            "blockers": [b.to_dict() for b in self.blockers],
            "opaque": list(self.opaque),
        }


def thread_bodies(graph: CallGraph) -> List[FuncInfo]:
    """Generator functions whose first parameter is a thread handle."""
    out = []
    for f in graph.funcs.values():
        args = f.node.args
        params = args.posonlyargs + args.args
        if params and params[0].arg in THREAD_PARAM_NAMES \
                and f.is_generator:
            out.append(f)
    return sorted(out, key=lambda f: (f.path, f.line, f.qualname))


def _closure_of(graph: CallGraph, body: FuncInfo) \
        -> Tuple[List[FuncInfo], List[str]]:
    """BFS over resolved delegation edges; returns (members, opaque)."""
    seen = {body.key}
    order = [body]
    opaque: List[str] = []
    cursor = 0
    while cursor < len(order):
        f = order[cursor]
        cursor += 1
        for y, res in f.resolved:
            if res.kind == "func":
                if res.key not in seen:
                    seen.add(res.key)
                    order.append(graph.funcs[res.key])
            elif res.kind == "unknown":
                opaque.append(f"{f.path}:{y.lineno}: yield from "
                              f"{res.label}")
    return order, sorted(set(opaque))


class _Classifier:
    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self._cfgs: Dict[str, FunctionCFG] = {}
        self._cycle_members: Dict[str, Tuple[str, ...]] = {}
        for cycle in graph.suspending_cycles():
            for key in cycle:
                self._cycle_members.setdefault(key, cycle)

    def cfg_of(self, f: FuncInfo) -> FunctionCFG:
        if f.key not in self._cfgs:
            self._cfgs[f.key] = build_cfg(f.node)
        return self._cfgs[f.key]

    def _delegation_suspends(self, f: FuncInfo, line: int,
                             col: int) -> bool:
        for y, res in f.resolved:
            if y.lineno == line and y.col_offset == col:
                sound, _known = self.graph.resolution_suspends(res)
                return sound
        return True  # unmatched: assume the worst

    def blockers_in(self, f: FuncInfo) -> List[Blocker]:
        out: List[Blocker] = []
        cfg = self.cfg_of(f)
        for sp in cfg.suspends:
            if sp.protected:
                # A delegation that provably never suspends needs no
                # cut, so it may sit inside a protected region.
                if sp.kind == "delegate" and not self._delegation_suspends(
                        f, sp.line, sp.col):
                    continue
                kind = _PROTECTION_KIND[sp.protected[-1]]
                out.append(Blocker(
                    kind=kind, rule="FLW002", path=f.path, line=sp.line,
                    func=f.qualname,
                    detail=(f"suspend point inside "
                            f"{' > '.join(sp.protected)} in {f.qualname}")))
            if sp.kind == "bare":
                out.append(Blocker(
                    kind="bare-yield", rule="FLW002", path=f.path,
                    line=sp.line, func=f.qualname,
                    detail=(f"{f.qualname} yields a non-directive value; "
                            f"the scheduler protocol only splits at "
                            f'"yield"/"suspend"/("io", ns) directives')))
        for mut in captured_mutations(f.node):
            out.append(Blocker(
                kind="closure-across-suspend", rule="FLW002", path=f.path,
                line=mut.store_line, func=f.qualname,
                detail=(f"{mut.name!r} is captured by the closure at line "
                        f"{mut.closure_line} and rebound at line "
                        f"{mut.store_line}, across the suspend point at "
                        f"line {mut.suspend_line}")))
        cycle = self._cycle_members.get(f.key)
        if cycle is not None:
            names = ", ".join(k.split("::", 1)[1] for k in cycle)
            out.append(Blocker(
                kind="suspending-recursion", rule="FLW002", path=f.path,
                line=f.line, func=f.qualname,
                detail=(f"{f.qualname} recurses through a suspending "
                        f"cycle ({names}); continuations cannot be "
                        f"statically enumerated")))
        return out

    def classify(self, body: FuncInfo) -> BodyReport:
        members, opaque = _closure_of(self.graph, body)
        blockers: List[Blocker] = []
        for f in members:
            blockers.extend(self.blockers_in(f))
        blockers.sort(key=lambda b: (b.path, b.line, b.kind))
        if blockers:
            verdict = NEEDS_REWRITE
        elif opaque:
            verdict = OPAQUE
        else:
            verdict = COMPILABLE
        cfg = self.cfg_of(body)
        return BodyReport(
            path=body.path,
            qualname=body.qualname,
            line=body.line,
            classification=verdict,
            directives=len(cfg.directive_suspends()),
            delegations=len(cfg.delegations()),
            closure=sorted(f.key for f in members),
            blockers=blockers,
            opaque=opaque,
        )


def classify_bodies(root: str,
                    roots: Tuple[str, ...] = SCAN_ROOTS,
                    interface: Optional[Dict[str, Dict[str, bool]]] = None,
                    ) -> List[BodyReport]:
    """Classify every thread body under ``root``'s scan roots.

    Findings suppressed in source are *not* filtered here: the report is
    a contract about what the compiler will face, not a lint gate.
    """
    paths = [os.path.join(root, r) for r in roots]
    graph = CallGraph.from_paths(
        [p for p in paths if os.path.exists(p)],
        relative_to=root, interface=interface)
    classifier = _Classifier(graph)
    return [classifier.classify(body) for body in thread_bodies(graph)]
