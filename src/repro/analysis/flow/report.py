"""The ``flowreport`` document: per-body compilability, byte-stable.

``python -m repro.analysis flowreport`` prints the human table;
``--json`` prints the canonical JSON document, whose bytes are checked
in at ``results/flow_report.json`` as the baseline contract the future
thread→event compiler must satisfy (see docs/analysis.md).  Stability
matters: the document contains only repo-relative posix paths and
AST-derived facts, sorted — no timestamps, no absolute paths, no
environment — so two runs over the same tree are byte-identical.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from repro.analysis.flow.callgraph import runtime_interface
from repro.analysis.flow.compilability import (
    COMPILABLE,
    NEEDS_REWRITE,
    OPAQUE,
    SCAN_ROOTS,
    classify_bodies,
)

__all__ = [
    "build_flow_report",
    "default_root",
    "render_flow_human",
    "render_flow_json",
]

#: Bump when the document shape changes; consumers key on it.
REPORT_VERSION = 1


def default_root() -> str:
    """The repo root, derived from the installed package location.

    The source layout is ``<root>/src/repro/...``; walking two levels up
    from the package lands on ``<root>``.  ``flowreport --root`` exists
    for trees laid out differently.
    """
    import repro
    pkg = os.path.dirname(os.path.abspath(repro.__file__))  # .../src/repro
    return os.path.dirname(os.path.dirname(pkg))


def build_flow_report(root: Optional[str] = None) -> dict:
    """Classify every thread body under ``root`` into one JSON-able doc."""
    root = root if root is not None else default_root()
    bodies = classify_bodies(root)
    summary: Dict[str, int] = {COMPILABLE: 0, NEEDS_REWRITE: 0, OPAQUE: 0}
    for b in bodies:
        summary[b.classification] += 1
    interface = {
        cls: sorted(m for m, suspends in methods.items() if suspends)
        for cls, methods in sorted(runtime_interface().items())
    }
    return {
        "report": "flowreport",
        "version": REPORT_VERSION,
        "roots": list(SCAN_ROOTS),
        "suspending_interface": interface,
        "bodies": [b.to_dict() for b in bodies],
        "summary": {"bodies": len(bodies), **summary},
    }


def render_flow_json(doc: dict) -> str:
    """The canonical (checked-in) byte form of the report."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_flow_human(doc: dict) -> str:
    """Aligned per-body table plus blocker details, for terminals."""
    bodies = doc["bodies"]
    lines: List[str] = []
    if not bodies:
        lines.append("flowreport: no thread bodies found")
        return "\n".join(lines) + "\n"
    where = [f"{b['path']}:{b['line']}" for b in bodies]
    width_where = max(len(w) for w in where)
    width_name = max(len(b["qualname"]) for b in bodies)
    for b, w in zip(bodies, where):
        lines.append(f"{w:<{width_where}}  {b['qualname']:<{width_name}}  "
                     f"{b['classification']:<13} "
                     f"directives={b['directives']} "
                     f"delegations={b['delegations']}")
        for blocker in b["blockers"]:
            lines.append(f"    {blocker['rule']} {blocker['kind']} at "
                         f"{blocker['path']}:{blocker['line']}: "
                         f"{blocker['detail']}")
        for reason in b["opaque"]:
            lines.append(f"    opaque: {reason}")
    s = doc["summary"]
    lines.append(f"{s['bodies']} bodies: {s[COMPILABLE]} compilable, "
                 f"{s[NEEDS_REWRITE]} need rewrite, {s[OPAQUE]} opaque")
    return "\n".join(lines) + "\n"
