"""Rule framework for migralint: findings, suppressions, dispatch.

A :class:`Rule` inspects one parsed module (a :class:`ModuleContext`) and
yields :class:`Finding`\\ s.  Rules self-register through the
:func:`register` decorator; :func:`all_rules` returns them in rule-id
order.  Suppression is per-line: a ``# migralint: disable=MIG001`` (or
``disable=MIG001,MIG002`` or ``disable=all``) comment on the flagged
line — or on a standalone comment line immediately above it — marks the
finding suppressed without deleting it from the report.
"""

from __future__ import annotations

import ast
import enum
import os
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Type

__all__ = [
    "Severity",
    "Finding",
    "ModuleContext",
    "Rule",
    "register",
    "all_rules",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "collect_files",
]


class Severity(enum.Enum):
    """How bad a rule's findings are (per-rule, fixed at rule definition)."""

    ERROR = "error"      # breaks migration correctness outright
    WARNING = "warning"  # likely breaks it; needs a human look

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic, pinned to a file and line."""

    rule: str
    severity: Severity
    path: str
    line: int
    message: str
    #: True when an inline ``# migralint: disable=`` comment covers it.
    suppressed: bool = False

    @property
    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def render(self) -> str:
        """The canonical one-line human form."""
        tag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}: {self.rule} "
                f"{self.severity.value}: {self.message}{tag}")


#: Comment syntax: ``# migralint: disable=MIG001,MIG002`` / ``disable=all``.
_SUPPRESS_RE = re.compile(r"#\s*migralint:\s*disable=([A-Za-z0-9_,\s]+)")
#: A line that is nothing but a comment (suppression applies to next line).
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of suppressed rule ids ('all' wildcard)."""
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = {part.strip().upper() for part in m.group(1).split(",")
                 if part.strip()}
        target = lineno
        # A standalone suppression comment covers the line below it.
        if _COMMENT_ONLY_RE.match(text):
            target = lineno + 1
        out.setdefault(target, set()).update(rules)
    return out


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one module."""

    path: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "ModuleContext":
        return cls(path=path, source=source,
                   tree=ast.parse(source, filename=path),
                   suppressions=_parse_suppressions(source))

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line, set())
        return rule_id.upper() in rules or "ALL" in rules


class Rule:
    """Base class for one migration-safety check.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings via :meth:`found` (which fills in id/severity/path).
    """

    #: Stable rule id, e.g. ``"MIG001"``.
    id: str = "MIG000"
    #: Short kebab-case name, e.g. ``"pup-completeness"``.
    name: str = "unnamed"
    severity: Severity = Severity.ERROR
    #: One-line description for ``--list-rules`` and the docs.
    summary: str = ""

    def found(self, ctx: ModuleContext, node_or_line, message: str) -> Finding:
        """Build a finding at an AST node (or explicit line number)."""
        line = (node_or_line if isinstance(node_or_line, int)
                else getattr(node_or_line, "lineno", 1))
        return Finding(rule=self.id, severity=self.severity, path=ctx.path,
                       line=line, message=message)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


#: Global registry, id -> rule class.  Populated by :func:`register` at
#: import time only (duplicate ids are rejected) and holding classes,
#: not per-run state — safe as a module global; runtime packages where
#: such globals can poison replay are policed by OBS001.
_RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the global registry."""
    if cls.id in _RULES and _RULES[cls.id] is not cls:
        raise ValueError(f"rule id {cls.id} registered twice")
    _RULES[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, in rule-id order."""
    # Importing the rules package populates the registry on first use.
    import repro.analysis.rules  # noqa: F401
    return [_RULES[rid]() for rid in sorted(_RULES)]


# ---------------------------------------------------------------------------
# analysis drivers
# ---------------------------------------------------------------------------

def analyze_source(source: str, path: str = "<string>",
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run rules over one module's source; returns sorted findings.

    Findings covered by an inline suppression come back with
    ``suppressed=True`` rather than being dropped, so reporters can show
    them and the gate can count only the live ones.  An unparseable
    module yields a single unsuppressable ``MIG000`` parse-error finding.
    """
    try:
        ctx = ModuleContext.from_source(source, path)
    except SyntaxError as e:
        return [Finding(rule="MIG000", severity=Severity.ERROR, path=path,
                        line=e.lineno or 1,
                        message=f"syntax error: {e.msg}")]
    findings: List[Finding] = []
    for rule in (rules if rules is not None else all_rules()):
        for f in rule.check(ctx):
            if ctx.is_suppressed(f.rule, f.line):
                f = replace(f, suppressed=True)
            findings.append(f)
    return sorted(findings, key=lambda f: f.sort_key)


def analyze_file(path: str,
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run rules over one ``.py`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        return analyze_source(fh.read(), path=path, rules=rules)


def collect_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  A path that exists but is neither a
    ``.py`` file nor a directory is ignored; a missing path raises
    ``FileNotFoundError`` (the CLI turns that into a usage error).
    """
    out: List[str] = []
    for p in paths:
        if os.path.isfile(p):
            if p.endswith(".py"):
                out.append(p)
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs[:] = sorted(d for d in dirs
                                 if not d.startswith(".") and d != "__pycache__")
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(p)
    return sorted(set(out))


def analyze_paths(paths: Iterable[str],
                  rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run rules over every ``.py`` file under ``paths``, sorted."""
    findings: List[Finding] = []
    for path in collect_files(paths):
        findings.extend(analyze_file(path, rules=rules))
    return sorted(findings, key=lambda f: f.sort_key)
