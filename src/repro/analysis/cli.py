"""migralint command line: ``python -m repro.analysis <paths>``.

Exit codes follow lint-tool convention:

* ``0`` — analyzed cleanly, no unsuppressed findings;
* ``1`` — at least one unsuppressed finding;
* ``2`` — usage error (no paths, unknown rule id, missing path).

One subcommand rides alongside the positional-paths lint interface:
``python -m repro.analysis flowreport [--json] [--out FILE] [--check]``
renders the thread→event compilability report (see
:mod:`repro.analysis.flow.report`).  Plain ``flowreport`` exits 0 on a
successful run — it is a contract document; with ``--check`` it becomes
a gate and exits 2 when any scanned body is not COMPILABLE, naming the
offenders (the CI face of the compiler's input contract: every thread
body the tree ships must lower to continuations).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import Rule, all_rules, analyze_paths
from repro.analysis.reporters import render_human, render_json

__all__ = ["main", "build_parser", "flowreport_main"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def flowreport_main(argv: Sequence[str]) -> int:
    """The ``flowreport`` subcommand (argv excludes the subcommand name)."""
    from repro.analysis.flow.report import (
        build_flow_report, render_flow_human, render_flow_json)
    parser = argparse.ArgumentParser(
        prog="migralint flowreport",
        description=("Classify every thread body as COMPILABLE / "
                     "NEEDS-REWRITE / OPAQUE for the thread-to-event "
                     "compiler (ROADMAP 2)."))
    parser.add_argument("--json", action="store_true",
                        help="print the canonical JSON document (the "
                             "byte form checked in at "
                             "results/flow_report.json)")
    parser.add_argument("--out", metavar="FILE",
                        help="also write the JSON document to FILE")
    parser.add_argument("--root", metavar="DIR",
                        help="repo root to scan (default: derived from "
                             "the installed package location)")
    parser.add_argument("--check", action="store_true",
                        help="gate mode: exit 2 if any scanned body is "
                             "not COMPILABLE (scriptable from CI; see "
                             "EXPERIMENTS.md)")
    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        return EXIT_CLEAN if e.code == 0 else EXIT_USAGE
    doc = build_flow_report(args.root)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(render_flow_json(doc))
    if args.json:
        sys.stdout.write(render_flow_json(doc))
    else:
        sys.stdout.write(render_flow_human(doc))
    if args.check:
        bad = [b for b in doc["bodies"]
               if b["classification"] != "COMPILABLE"]
        if bad:
            print(f"flowreport --check: {len(bad)} body(ies) not "
                  f"COMPILABLE:", file=sys.stderr)
            for b in bad:
                why = "; ".join(
                    [f"{blk['rule']} {blk['kind']} (line {blk['line']})"
                     for blk in b.get("blockers", [])]
                    + list(b.get("opaque", []))) or "unclassified"
                print(f"  {b['path']}:{b['line']} {b['qualname']} "
                      f"[{b['classification']}] {why}",
                      file=sys.stderr)
            return EXIT_USAGE
        print(f"flowreport --check: all "
              f"{doc['summary']['bodies']} bodies COMPILABLE",
              file=sys.stderr)
    return EXIT_CLEAN


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="migralint",
        description=("Static migration-safety analysis for repro programs: "
                     "checks the paper's PUP / swap-global / isomalloc / "
                     "SDAG disciplines (rules MIG001-MIG005)."))
    parser.add_argument("paths", nargs="*",
                        help="files or directories to analyze")
    parser.add_argument("--format", choices=("human", "json"),
                        default="human", help="report format")
    parser.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run (default all)")
    parser.add_argument("--disable", metavar="IDS",
                        help="comma-separated rule ids to skip")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in human output")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    return parser


def _pick_rules(select: Optional[str],
                disable: Optional[str]) -> List[Rule]:
    """Resolve --select/--disable against the registry.

    Raises ``ValueError`` naming the offending id when it is unknown.
    """
    rules = all_rules()
    known = {r.id for r in rules}

    def split(spec: Optional[str]) -> List[str]:
        if not spec:
            return []
        ids = [part.strip().upper() for part in spec.split(",") if part.strip()]
        for rid in ids:
            if rid not in known:
                raise ValueError(f"unknown rule id {rid!r} "
                                 f"(known: {', '.join(sorted(known))})")
        return ids

    selected = split(select)
    disabled = split(disable)
    if selected:
        rules = [r for r in rules if r.id in selected]
    return [r for r in rules if r.id not in disabled]


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "flowreport":
        return flowreport_main(argv[1:])
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        # argparse already printed a message; normalize help (0) vs error (2).
        return EXIT_CLEAN if e.code == 0 else EXIT_USAGE

    try:
        rules = _pick_rules(args.select, args.disable)
    except ValueError as e:
        print(f"migralint: {e}", file=sys.stderr)
        return EXIT_USAGE

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.name:<22} [{rule.severity.value}]  "
                  f"{rule.summary}")
        return EXIT_CLEAN

    if not args.paths:
        print("migralint: no paths given (try: migralint src examples)",
              file=sys.stderr)
        return EXIT_USAGE

    try:
        findings = analyze_paths(args.paths, rules=rules)
    except FileNotFoundError as e:
        print(f"migralint: no such path: {e.args[0]}", file=sys.stderr)
        return EXIT_USAGE

    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_human(findings, show_suppressed=args.show_suppressed))
    active = [f for f in findings if not f.suppressed]
    return EXIT_FINDINGS if active else EXIT_CLEAN


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
