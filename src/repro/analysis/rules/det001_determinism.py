"""DET001 wall-clock-in-sim: nondeterminism sources in replayable code.

Every golden fingerprint in this repo — replay tests, the chaos
harness's cross-run comparisons, the migration determinism suite —
depends on the runtime packages being pure functions of (inputs, seed).
One ``time.time()`` in a scheduling decision or one seedless
``random.Random()`` in a workload silently breaks bit-identical replay,
usually long after the commit that introduced it.

Inside ``repro/{sim,core,kernel,chaos,exec,obs}`` this rule bans:

* wall/CPU clock reads: ``time.time``/``monotonic``/``perf_counter``/
  ``process_time`` (and their ``_ns`` twins), ``time.sleep``,
  ``datetime.now``/``utcnow``/``today``, ``date.today`` — simulated
  time comes from the kernel clock;
* draws from the process-global RNG: ``random.random`` and friends,
  ``np.random.rand``/``randn``/etc. — all randomness must flow from an
  explicit seed;
* seedless generator construction: ``random.Random()`` /
  ``default_rng()`` with no argument (or ``None``) seeds from the OS.

``random.Random(seed)`` and ``default_rng(seed)`` are the sanctioned
forms.  Host-side *diagnostics* that genuinely want wall time — the
phase profiler, bench harness timers, pool heartbeats — carry justified
``# migralint: disable=DET001`` suppressions; the point is that each
one is a reviewed decision, not an accident.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import call_name
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["WallClockInSim"]

#: Directory fragments of the replay-deterministic runtime packages.
_SCOPED = ("repro/sim/", "repro/core/", "repro/kernel/",
           "repro/chaos/", "repro/exec/", "repro/obs/")

#: Banned dotted calls, as the last-two-segment names call_name() gives.
#: ``np.random.rand`` arrives as ``random.rand``, so the numpy global
#: RNG is covered by the ``random.*`` entries.
_BANNED = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.sleep",
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    "random.random", "random.randint", "random.randrange",
    "random.choice", "random.choices", "random.shuffle", "random.sample",
    "random.uniform", "random.gauss", "random.seed", "random.getrandbits",
    "random.rand", "random.randn", "random.normal", "random.permutation",
}

#: Bare names that become banned when from-imported from these modules.
_BANNED_MODULES = {"time", "datetime", "random", "numpy.random"}

#: Constructors that must receive an explicit seed argument.
_SEEDED_CTORS = {"Random", "default_rng", "SystemRandom"}


def _seedless(call: ast.Call) -> bool:
    """No positional seed, or an explicit ``None``."""
    if call.args:
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None
    return not any(kw.arg == "seed" and not (
        isinstance(kw.value, ast.Constant) and kw.value.value is None)
        for kw in call.keywords)


@register
class WallClockInSim(Rule):
    """Wall-clock reads and unseeded RNG in the deterministic runtime."""

    id = "DET001"
    name = "wall-clock-in-sim"
    severity = Severity.ERROR
    summary = ("wall-clock/unseeded-RNG calls in repro/{sim,core,kernel,"
               "chaos,exec,obs} break bit-identical replay — use the "
               "kernel clock and explicit seeds")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        path = ctx.path.replace("\\", "/")
        if not any(frag in path for frag in _SCOPED):
            return
        from_imported = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0 \
                    and node.module in _BANNED_MODULES:
                for alias in node.names:
                    from_imported.add(alias.asname or alias.name)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            last = name.split(".")[-1]
            if last in _SEEDED_CTORS and (
                    name == f"random.{last}"
                    or (name == last and last in from_imported)):
                if last == "SystemRandom":
                    yield self.found(
                        ctx, node,
                        f"{name}() draws OS entropy — replay cannot "
                        f"reproduce it; use random.Random(seed)")
                elif _seedless(node):
                    yield self.found(
                        ctx, node,
                        f"seedless {name}() seeds from the OS — every "
                        f"run differs; pass the experiment seed "
                        f"explicitly")
                continue
            if name in _BANNED:
                yield self.found(
                    ctx, node,
                    f"{name}() is nondeterministic across runs — "
                    f"simulated time comes from the kernel clock and "
                    f"randomness from the cell seed")
            elif "." not in name and name in from_imported:
                yield self.found(
                    ctx, node,
                    f"{name}() (from-imported) is nondeterministic "
                    f"across runs — use the kernel clock / an "
                    f"explicitly seeded RNG")
