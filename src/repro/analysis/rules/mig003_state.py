"""MIG003 non-migratable-state: host objects held across suspension.

Migration ships a flow's state — stack, isomalloc heap, PUP'ed fields —
over the simulated wire (paper Section 3).  Host-process resources are
the one thing that cannot travel: an OS lock, an open file descriptor,
a socket, or a kernel thread is meaningful only in the process that
created it.  Holding one in a migratable object's attribute, or in a
thread-body local that lives across a ``yield`` (any suspension point is
a potential migration point), produces an object that unpacks into
garbage on the destination processor.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["NonMigratableState"]

#: Dotted call targets that construct host-process-bound resources.
_NONMIG_CALLS = {
    "open", "io.open", "os.open", "os.fdopen", "os.pipe",
    "socket.socket", "socket.create_connection",
    "subprocess.Popen", "mmap.mmap",
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Event", "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Barrier", "threading.Thread", "threading.local",
    "multiprocessing.Process", "multiprocessing.Pool",
    "multiprocessing.Queue", "multiprocessing.Lock",
    "tempfile.TemporaryFile", "tempfile.NamedTemporaryFile",
}

#: Bare constructor names (``from threading import Lock`` style).
_NONMIG_BARE = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
                "Barrier", "Popen"}


def _nonmig_call(node: ast.expr) -> Optional[str]:
    """The offending constructor name if ``node`` builds host state."""
    if not isinstance(node, ast.Call):
        return None
    name = astutil.call_name(node)
    if name in _NONMIG_CALLS or name in _NONMIG_BARE:
        return name
    return None


def _contains_yield(node: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in ast.walk(node))


@register
class NonMigratableState(Rule):
    """Locks/files/sockets stored in migratable state or held over yields."""

    id = "MIG003"
    name = "non-migratable-state"
    severity = Severity.ERROR
    summary = ("locks, file handles, sockets, and other host-process "
               "objects held in thread/chare state across a suspension "
               "point cannot cross the simulated wire")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # Attributes of migratable classes: bad no matter the control flow —
        # the object as a whole is subject to PUP-based migration.
        for cls in astutil.iter_classes(ctx.tree):
            if not astutil.is_migratable_class(cls):
                continue
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                params = func.args.posonlyargs + func.args.args
                self_name = params[0].arg if params else "self"
                for node in astutil.walk_shallow(func):
                    if not isinstance(node, ast.Assign):
                        continue
                    bad = _nonmig_call(node.value)
                    if bad is None:
                        continue
                    for t in node.targets:
                        attr = astutil.self_attr_name(t, self_name)
                        if attr is not None:
                            yield self.found(
                                ctx, node,
                                f"{cls.name}.{func.name} stores {bad}() in "
                                f"self.{attr} — host-process state cannot "
                                f"migrate with the object")
        # Thread-body locals: bad when the resource spans a yield, i.e. a
        # suspension during which the thread may be packed and shipped.
        for mc in astutil.migratable_contexts(ctx.tree):
            if not astutil.is_generator(mc.func):
                continue
            for node in astutil.walk_shallow(mc.func):
                if isinstance(node, ast.Assign):
                    bad = _nonmig_call(node.value)
                    if bad is not None:
                        yield self.found(
                            ctx, node,
                            f"{mc.describe} holds {bad}() in a local that "
                            f"lives across yields — the handle dangles if "
                            f"the flow migrates while suspended")
                elif isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        bad = _nonmig_call(item.context_expr)
                        if bad is not None and _contains_yield(node):
                            yield self.found(
                                ctx, item.context_expr,
                                f"{mc.describe} enters a {bad}() context "
                                f"spanning a yield — the resource cannot "
                                f"follow the flow to another processor")
