"""MIG002 unprivatized-global: raw module globals in migratable bodies.

Section 3.1.1 of the paper: unmodified global variables are shared by
every user-level thread on a processor, so two migratable flows touching
the same global race — and after migration the value does not travel.
The swap-global mechanism fixes this by giving each thread a private
copy reached through its own GOT (:class:`repro.core.swapglobal.GlobalRegistry`
/ ``GlobalOffsetTable``); thread bodies should use
``th.global_read_int``/``th.global_write_int`` (or thread-local state)
instead of touching module-level mutables directly.

The rule flags any reference to a module-level *mutable* global (list /
dict / set bindings) from inside a migratable context — a Chare or Poser
method, an SDAG method, or a generator thread body — plus any ``global``
declaration of one.  Immutable module constants (numbers, strings,
tuples, frozen configs) are fine: they are the same on every processor.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["UnprivatizedGlobal"]


@register
class UnprivatizedGlobal(Rule):
    """Module-level mutable globals used inside migratable flow bodies."""

    id = "MIG002"
    name = "unprivatized-global"
    severity = Severity.ERROR
    summary = ("module-level mutable globals referenced inside "
               "UThread/chare/SDAG bodies bypass GlobalRegistry "
               "privatization (swap-global, paper §3.1.1)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        mutables = astutil.module_mutable_globals(ctx.tree)
        if not mutables:
            return
        for mc in astutil.migratable_contexts(ctx.tree):
            locals_ = astutil.local_names(mc.func)
            reported: "set[tuple[str, int]]" = set()
            for node in astutil.walk_shallow(mc.func):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        if name in mutables:
                            key = (name, node.lineno)
                            if key not in reported:
                                reported.add(key)
                                yield self._finding(ctx, node.lineno, name, mc)
                elif isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load) \
                        and node.id in mutables \
                        and node.id not in locals_:
                    key = (node.id, node.lineno)
                    if key not in reported:
                        reported.add(key)
                        yield self._finding(ctx, node.lineno, node.id, mc)

    def _finding(self, ctx: ModuleContext, line: int, name: str,
                 mc: astutil.MigratableContext) -> Finding:
        return self.found(
            ctx, line,
            f"{mc.describe} touches module-level mutable global {name!r} "
            f"without swap-global privatization — shared across flows and "
            f"left behind on migration (use GlobalRegistry or pass state "
            f"explicitly)")
