"""EXC001 worker-purity: sweep workers rebuild runtimes, never import them.

The parallel sweep executor's determinism contract rests on one
discipline: a cell is **plain data** plus the dotted name of an entry
point, and the worker rebuilds whatever runtime it needs *inside the
entry function* through public constructors.  The moment live kernel
state — a scheduler, a cluster, an event queue — crosses a process
boundary (pickled into a task, captured in a closure, or baked into a
module global that every worker inherits), serial and parallel runs can
diverge and a cached result stops meaning anything.

This rule polices the worker side of that contract.  In any module that
belongs to ``src/repro/exec/`` or imports ``multiprocessing`` (i.e. any
module that ships work to other processes), it flags:

* ``import pickle`` / ``dill`` / ``cloudpickle`` — hand-pickling is how
  live state sneaks into a payload; cells must stay JSON-able plain
  data, and ``multiprocessing``'s own transport only ever sees them;
* a ``lambda`` or locally-defined function passed as a process-pool
  target (``Process(target=...)``, ``submit``, ``apply_async``,
  ``map``) — closures capture live state and cannot be re-resolved by
  name in a fresh worker; workers are addressed by dotted path;
* a runtime/kernel constructor called at module scope — a module-level
  ``AmpiRuntime(...)`` or ``EventKernel(...)`` runs in *every* worker at
  import time and becomes shared warm state that cells implicitly
  depend on; construct runtimes per cell, inside the entry point.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["WorkerPurity"]

#: Serialization modules that smuggle live objects into payloads.
_PICKLERS = {"pickle", "dill", "cloudpickle"}

#: Call names that hand a callable to another process.
_DISPATCHERS = {"Process", "submit", "apply_async", "map", "map_async",
                "starmap", "imap", "imap_unordered"}

#: Public constructors of live runtime/kernel state.  Calling one at
#: module scope turns import into hidden per-worker setup.
_RUNTIME_CTORS = {
    "AmpiRuntime", "CharmRuntime", "EventKernel", "Cluster", "ChaosRunner",
    "PoseEngine", "BigSimEngine", "FaultInjector", "CthScheduler",
    "HookBus", "LBManager", "Checkpointer", "ThreadMigrator",
}


def _call_name(node: ast.Call) -> str:
    fn = node.func
    if isinstance(fn, ast.Attribute):
        return fn.attr
    if isinstance(fn, ast.Name):
        return fn.id
    return ""


def _local_defs(tree: ast.Module) -> set:
    """Names of functions defined anywhere in this module."""
    return {node.name for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def _module_scope_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Top-level statements, descending into If/Try/With but not defs."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.If, ast.Try, ast.With, ast.For, ast.While)):
            for field in ("body", "orelse", "finalbody", "handlers"):
                for child in getattr(node, field, []):
                    stack.extend(child.body if isinstance(
                        child, ast.ExceptHandler) else [child])


@register
class WorkerPurity(Rule):
    """Pickled live state or module-scope runtimes in worker modules."""

    id = "EXC001"
    name = "worker-purity"
    severity = Severity.ERROR
    summary = ("sweep worker modules must ship cells as plain data and "
               "rebuild runtimes through public constructors inside the "
               "entry point — no pickle/dill, no closure targets, no "
               "module-scope runtime construction")

    def _in_scope(self, ctx: ModuleContext) -> bool:
        path = ctx.path.replace("\\", "/")
        if "repro/exec/" in path:
            return True
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                if any(a.name.split(".")[0] == "multiprocessing"
                       for a in node.names):
                    return True
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "multiprocessing":
                    return True
        return False

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        local_defs = _local_defs(ctx.tree)
        # 1. hand-pickling imports.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] in _PICKLERS:
                        yield self.found(
                            ctx, node,
                            f"import of {alias.name.split('.')[0]} in a "
                            f"worker module — cells must stay JSON-able "
                            f"plain data; hand-pickling is how live "
                            f"kernel state sneaks across the process "
                            f"boundary")
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] in _PICKLERS:
                    yield self.found(
                        ctx, node,
                        f"import from {node.module} in a worker module — "
                        f"cells must stay JSON-able plain data")
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name not in _DISPATCHERS:
                    continue
                candidates = list(node.args)
                candidates += [kw.value for kw in node.keywords
                               if kw.arg in (None, "target", "func", "fn")]
                for arg in candidates:
                    if isinstance(arg, ast.Lambda):
                        yield self.found(
                            ctx, arg,
                            f"lambda passed to {name}() — a worker "
                            f"target must be a module-level function "
                            f"resolvable by dotted path, not a closure "
                            f"over live state")
                    elif (isinstance(arg, ast.Name)
                            and arg.id in local_defs
                            and self._is_nested_def(ctx.tree, arg.id)):
                        yield self.found(
                            ctx, arg,
                            f"locally-defined function {arg.id!r} passed "
                            f"to {name}() — worker targets must be "
                            f"module-level (resolvable by dotted path in "
                            f"a fresh process)")
        # 3. module-scope runtime construction.
        for stmt in _module_scope_statements(ctx.tree):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and _call_name(node) in _RUNTIME_CTORS):
                    yield self.found(
                        ctx, node,
                        f"{_call_name(node)}() constructed at module "
                        f"scope in a worker module — every worker runs "
                        f"this at import and inherits shared live state; "
                        f"construct runtimes per cell inside the worker "
                        f"entry point")

    @staticmethod
    def _is_nested_def(tree: ast.Module, name: str) -> bool:
        """Whether ``name`` is defined anywhere *below* module scope."""
        top = {node.name for node in tree.body
               if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}
        return name not in top
