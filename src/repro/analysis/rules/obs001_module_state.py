"""OBS001 module-state: no module-global mutable runtime state.

Two of this repo's replay-determinism bugs had the same root cause: a
module-level mutable binding (a counter, a registry) mutated from inside
function bodies.  Module globals live for the whole host *process*, so
the second run in one process starts from where the first one left off —
message ids kept counting, and byte-identical replays stopped being
byte-identical.  Per-run state belongs on per-run objects (the cluster,
the runtime, the registry passed in), where a fresh construction means a
fresh start.

The rule is scoped to the runtime packages whose state must reset per
run — ``repro/sim``, ``repro/core``, ``repro/kernel``, ``repro/obs`` —
and flags any module-scope binding of a mutable container (literal or
``dict()``/``list()``/``set()``/``defaultdict()``-style constructor) or
numeric constant that function bodies then mutate, via ``global``,
a mutator method (``.append``/``.update``/``.setdefault``/...), or
subscript assignment.  The finding anchors at the *binding*, so a
write-once registry with a real justification carries its suppression
comment right where the state is declared.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.core import (Finding, ModuleContext, Rule, Severity,
                                 register)

__all__ = ["ModuleState"]

#: Constructor calls that produce a mutable container.
_MUTABLE_CTORS = {"dict", "list", "set", "bytearray", "defaultdict",
                  "OrderedDict", "deque", "Counter"}

#: Method calls that mutate a container in place.
_MUTATORS = {"append", "appendleft", "add", "update", "setdefault", "pop",
             "popitem", "popleft", "clear", "extend", "insert", "remove",
             "discard", "sort", "reverse"}

_SCOPES = ("repro/sim/", "repro/core/", "repro/kernel/", "repro/obs/")


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        fn = node.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else "")
        return name in _MUTABLE_CTORS
    return False


def _is_scalar_value(node: ast.expr) -> bool:
    return (isinstance(node, ast.Constant)
            and isinstance(node.value, (int, float))
            and not isinstance(node.value, bool))


def _function_bodies(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node


@register
class ModuleState(Rule):
    """Module-scope mutable bindings mutated from function bodies."""

    id = "OBS001"
    name = "module-state"
    severity = Severity.ERROR
    summary = ("runtime packages must not keep mutable state at module "
               "scope — a process-lifetime global mutated by function "
               "bodies carries one run's state into the next and breaks "
               "cross-run replay determinism; put it on a per-run object")

    def _in_scope(self, ctx: ModuleContext) -> bool:
        path = ctx.path.replace("\\", "/")
        return any(scope in path for scope in _SCOPES)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not self._in_scope(ctx):
            return
        # Module-scope bindings of mutable containers / numeric scalars.
        containers: Dict[str, ast.stmt] = {}
        scalars: Dict[str, ast.stmt] = {}
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                value = stmt.value
                if value is None:
                    continue
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id.startswith("__"):
                        continue  # __all__ and friends are interface, not state
                    if _is_mutable_value(value):
                        containers[target.id] = stmt
                    elif _is_scalar_value(value):
                        scalars[target.id] = stmt
        if not containers and not scalars:
            return
        # Evidence of mutation from inside any function body.
        rebound: Set[str] = set()       # `global NAME` + assignment
        mutated: Set[str] = set()       # in-place container mutation
        for fn in _function_bodies(ctx.tree):
            for node in ast.walk(fn):
                if isinstance(node, ast.Global):
                    rebound.update(node.names)
                elif (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _MUTATORS
                        and isinstance(node.func.value, ast.Name)):
                    mutated.add(node.func.value.id)
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (node.targets if isinstance(node, ast.Assign)
                               else [node.target])
                    for target in targets:
                        if (isinstance(target, ast.Subscript)
                                and isinstance(target.value, ast.Name)):
                            mutated.add(target.value.id)
        for name, stmt in sorted(containers.items()):
            if name in mutated or name in rebound:
                yield self.found(
                    ctx, stmt,
                    f"module-global {name!r} is mutable and mutated from "
                    f"function bodies — its contents outlive any single "
                    f"run and leak one run's state into the next; move it "
                    f"onto a per-run object, or justify (write-once at "
                    f"import time?) and suppress here")
        for name, stmt in sorted(scalars.items()):
            if name in rebound:
                yield self.found(
                    ctx, stmt,
                    f"module-global counter {name!r} is rebound via "
                    f"'global' from function bodies — it keeps counting "
                    f"across runs in one process, so identical runs "
                    f"diverge (the msg_id replay bug); move it onto a "
                    f"per-run object")
