"""The shipped migralint rules (importing this package registers them).

Each module defines one rule, grounded in a specific mechanism of the
paper: PUP traversal (MIG001), swap-global privatization (MIG002), the
migration state contract (MIG003), SDAG coordination discipline (MIG004),
isomalloc address validity (MIG005), the single-event-kernel discipline
(KRN001), the sweep-worker purity contract (EXC001), the
no-module-global-runtime-state discipline (OBS001), replay determinism
(DET001), and the thread→event compilation disciplines built on
:mod:`repro.analysis.flow` — lost delegation (FLW001), unsplittable
constructs (FLW002), and dead suspend surface (FLW003).
"""

from repro.analysis.rules import (  # noqa: F401
    det001_determinism,
    exc001_worker_purity,
    flw001_delegation,
    flw002_unsplittable,
    flw003_dead_surface,
    krn001_kernel_bypass,
    mig001_pup,
    mig002_globals,
    mig003_state,
    mig004_sdag,
    mig005_isomalloc,
    obs001_module_state,
)
