"""KRN001 kernel-bypass: heapq and hand-rolled run loops outside the kernel.

The refactor that produced :mod:`repro.kernel` exists precisely because
five subsystems had each grown their own event loop — five places to get
``(time, seq)`` tie-breaking, cancellation, and quiescence subtly wrong,
and five places the chaos injector and tracer could not see.  The kernel
is now the single sanctioned scheduling site: ``MinHeap`` wraps the one
legal ``heapq`` use, and every dispatch loop is ``EventKernel.run``.

This rule keeps it that way.  It flags, anywhere outside
``src/repro/kernel/``:

* ``import heapq`` / ``from heapq import ...`` — priority queues belong
  in :class:`repro.kernel.MinHeap`;
* calls to ``heapq.*`` or to from-imported heap functions
  (``heappush``/``heappop``/...);
* hand-rolled dispatch loops: a ``while`` draining a run-queue-named
  container (``ready``, ``run_queue``, ``events``, ...) via
  ``popleft()`` / ``pop(0)`` — schedule kernel events instead.

The drain check is gated on the receiver's *name* so that legitimate
bounded buffer drains (e.g. SDAG's ``buf.popleft()`` when-matching) do
not trip it; a run loop hiding behind an innocuous name still bypasses
the kernel, but naming a run queue ``buf`` to dodge the linter does not
survive review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["KernelBypass"]

#: heapq functions that from-import callers actually use.
_HEAP_FNS = {"heappush", "heappop", "heapify", "heapreplace", "heappushpop"}

#: Name fragments that mark a container as a run/event queue.  The drain
#: check only fires on these, so ordinary buffer drains stay clean.
_QUEUEISH = ("ready", "runq", "run_queue", "queue", "event")


def _receiver_name(node: ast.expr) -> str:
    """The final name component of a call receiver (``self.ready`` -> ``ready``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _queueish(name: str) -> bool:
    low = name.lower()
    return any(frag in low for frag in _QUEUEISH)


def _is_drain_call(node: ast.AST) -> bool:
    """``<queueish>.popleft()`` or ``<queueish>.pop(0)``."""
    if not (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and _queueish(_receiver_name(node.func.value))):
        return False
    if node.func.attr == "popleft" and not node.args:
        return True
    return (node.func.attr == "pop" and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0)


@register
class KernelBypass(Rule):
    """heapq use or a hand-rolled dispatch loop outside ``repro.kernel``."""

    id = "KRN001"
    name = "kernel-bypass"
    severity = Severity.ERROR
    summary = ("heapq priority queues and hand-rolled run loops outside "
               "src/repro/kernel bypass the instrumented event kernel "
               "(use repro.kernel.MinHeap / EventKernel)")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        # The kernel package itself is the one sanctioned site.
        if "repro/kernel/" in ctx.path.replace("\\", "/"):
            return
        from_imported = set()
        seen_drains = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "heapq":
                        yield self.found(
                            ctx, node,
                            "import of heapq outside src/repro/kernel — "
                            "use repro.kernel.MinHeap (the one sanctioned "
                            "heap) or schedule kernel events")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq":
                    from_imported.update(a.asname or a.name
                                         for a in node.names)
                    yield self.found(
                        ctx, node,
                        "import from heapq outside src/repro/kernel — "
                        "use repro.kernel.MinHeap instead")
            elif isinstance(node, ast.Call):
                fn = node.func
                if (isinstance(fn, ast.Attribute)
                        and isinstance(fn.value, ast.Name)
                        and fn.value.id == "heapq"):
                    yield self.found(
                        ctx, node,
                        f"heapq.{fn.attr}() outside src/repro/kernel — "
                        f"use repro.kernel.MinHeap instead")
                elif (isinstance(fn, ast.Name) and fn.id in _HEAP_FNS
                        and fn.id in from_imported):
                    yield self.found(
                        ctx, node,
                        f"{fn.id}() outside src/repro/kernel — use "
                        f"repro.kernel.MinHeap instead")
            elif isinstance(node, ast.While):
                for sub in ast.walk(ast.Module(body=node.body,
                                               type_ignores=[])):
                    # Nested whiles would visit the same call twice.
                    if _is_drain_call(sub) and id(sub) not in seen_drains:
                        seen_drains.add(id(sub))
                        name = _receiver_name(sub.func.value)
                        yield self.found(
                            ctx, sub,
                            f"hand-rolled run loop drains {name!r} "
                            f"directly — dispatch through "
                            f"repro.kernel.EventKernel (schedule events "
                            f"and call run()) so tracing, chaos hooks, "
                            f"and stop policies apply")
