"""MIG005 isomalloc-escape: simulated addresses leaking into host state.

Isomalloc's guarantee (paper Section 3.4.2) is that an address returned
by a thread's ``malloc``/``alloca`` stays valid *for that thread*, on
whatever processor it migrates to, because the slot's virtual range is
reserved cluster-wide and its pages travel with the thread.  The
guarantee says nothing about anyone else: an address stashed in a
module-level host container outlives the thread's residency — after the
thread migrates away the address points at a reserved-but-unbacked
range (a page fault), or worse, at another thread's re-used slot.  The
same applies to ``AddressSpace.mmap`` mappings captured outside the
owning flow.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["IsomallocEscape"]

#: Method names whose results are simulated addresses / address ranges.
_ALLOC_ATTRS = {"malloc", "alloca", "mmap"}

#: Container mutators that capture a value into the receiver.
_CAPTURE_METHODS = {"append", "add", "insert", "extend", "setdefault",
                    "update"}


def _alloc_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _ALLOC_ATTRS)


def _tainted_names(func: astutil.FuncDef) -> Dict[str, int]:
    """Locals assigned (directly) from an allocator call -> line."""
    out: Dict[str, int] = {}
    for node in astutil.walk_shallow(func):
        if isinstance(node, ast.Assign) and _alloc_call(node.value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    out[t.id] = node.lineno
    return out


def _carries_address(expr: ast.expr, tainted: Dict[str, int]) -> bool:
    """Whether ``expr`` contains an allocator result (directly or by name)."""
    for node in ast.walk(expr):
        if _alloc_call(node):
            return True
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in tainted:
            return True
    return False


@register
class IsomallocEscape(Rule):
    """Addresses from malloc/alloca/mmap stored in non-migrating containers."""

    id = "MIG005"
    name = "isomalloc-escape"
    severity = Severity.WARNING
    summary = ("simulated addresses from AddressSpace/isomalloc stored "
               "into module-level host containers dangle once the owning "
               "flow migrates away")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        mutables = astutil.module_mutable_globals(ctx.tree)
        for func in astutil.iter_functions(ctx.tree):
            tainted = _tainted_names(func)
            locals_ = astutil.local_names(func)
            globals_decl: Set[str] = set()
            for node in astutil.walk_shallow(func):
                if isinstance(node, ast.Global):
                    globals_decl.update(node.names)

            def is_global_container(name_node: ast.expr) -> bool:
                return (isinstance(name_node, ast.Name)
                        and name_node.id in mutables
                        and (name_node.id not in locals_
                             or name_node.id in globals_decl))

            for node in astutil.walk_shallow(func):
                if isinstance(node, ast.Assign):
                    if not _carries_address(node.value, tainted):
                        continue
                    for t in node.targets:
                        if isinstance(t, ast.Subscript) \
                                and is_global_container(t.value):
                            yield self.found(
                                ctx, node,
                                f"simulated address stored into "
                                f"module-level container "
                                f"{t.value.id!r} — it dangles once the "
                                f"owning flow migrates (keep addresses in "
                                f"migratable state)")
                        elif isinstance(t, ast.Name) \
                                and t.id in globals_decl \
                                and t.id in mutables:
                            yield self.found(
                                ctx, node,
                                f"simulated address assigned to global "
                                f"{t.id!r} — it dangles once the owning "
                                f"flow migrates")
                elif isinstance(node, ast.Call) \
                        and isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _CAPTURE_METHODS \
                        and is_global_container(node.func.value):
                    if any(_carries_address(a, tainted) for a in node.args):
                        yield self.found(
                            ctx, node,
                            f"simulated address captured via "
                            f"{node.func.value.id}.{node.func.attr}() into "
                            f"a module-level container — it dangles once "
                            f"the owning flow migrates")
