"""FLW002 unsplittable: a construct the compiler cannot cut through.

The thread→event compiler (ROADMAP 2) splits a body at every suspend
point into continuation functions — the CPC transformation.  *Generating
events with style* (PAPERS.md) catalogues the constructs that defeat the
split, and this rule flags each one at its exact location:

* a suspend point inside ``with`` or ``try/finally`` — the cleanup
  action would have to survive across continuations;
* a suspend point under an ``except`` handler — the live exception
  cannot be packed into a continuation record;
* a bare ``yield`` of a non-directive value — the scheduler protocol
  (``repro.core.scheduler``) only defines cuts at ``"yield"`` /
  ``"suspend"`` / ``("io", ns)`` directives;
* a closure capturing a local that is rebound across a suspend point —
  the rebinding is invisible to the already-materialised cell (CPC's
  ban on ``&local`` escaping across cps calls).

Only *compilation-eligible* functions are checked: thread bodies
(generator, first parameter ``th``/``thread``/``mpi``), functions that
yield scheduler directives themselves, and functions that ``yield
from``-delegate to a suspending callee.  Ordinary generators — text
emitters, ``@contextmanager`` helpers — are none of these and stay
clean no matter what they yield.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.astutil import THREAD_PARAM_NAMES
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register
from repro.analysis.flow.callgraph import CallGraph, FuncInfo
from repro.analysis.flow.cfg import build_cfg, captured_mutations

__all__ = ["Unsplittable"]


def _is_thread_body(func: FuncInfo) -> bool:
    args = func.node.args
    params = args.posonlyargs + args.args
    return bool(params and params[0].arg in THREAD_PARAM_NAMES
                and func.is_generator)


def _eligible(graph: CallGraph, func: FuncInfo) -> bool:
    """Does this function take part in thread→event compilation?"""
    if not func.is_generator:
        return False
    if _is_thread_body(func) or func.directive_yields:
        return True
    # Delegation only makes a function compilation-eligible when the
    # target provably speaks the scheduler protocol; keying on the
    # sound or known suspends bits would drag every generator that
    # yield-from-delegates — reporters, rule check() methods — into
    # the protocol and flag their ordinary yields.
    return any(graph.resolution_protocol(res) for _y, res in func.resolved)


@register
class Unsplittable(Rule):
    """Unsplittable construct spanning a suspend point."""

    id = "FLW002"
    name = "unsplittable"
    severity = Severity.ERROR
    summary = ("a suspend point inside with/try-finally/except, a bare "
               "non-directive yield, or a closure capture mutated across "
               "a suspend defeats the thread-to-event split")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        graph = CallGraph.from_context(ctx)
        for func in graph.functions_in(ctx.path):
            if not _eligible(graph, func):
                continue
            cfg = build_cfg(func.node)
            for sp in cfg.suspends:
                if sp.protected:
                    where = " > ".join(sp.protected)
                    yield self.found(
                        ctx, sp.line,
                        f"suspend point in {func.qualname} sits inside "
                        f"{where} — the compiler cannot split a "
                        f"protected region; hoist the suspend out or "
                        f"rewrite the cleanup as an explicit "
                        f"continuation step")
                if sp.kind == "bare":
                    yield self.found(
                        ctx, sp.line,
                        f"{func.qualname} yields a non-directive value; "
                        f"the scheduler only splits at \"yield\"/"
                        f"\"suspend\"/(\"io\", ns) directives — "
                        f"unknown values fall through to the directive "
                        f"handler and cannot be compiled")
            for mut in captured_mutations(func.node):
                yield self.found(
                    ctx, mut.store_line,
                    f"{mut.name!r} is captured by the closure at line "
                    f"{mut.closure_line} and rebound here, across the "
                    f"suspend point at line {mut.suspend_line} — the "
                    f"continuation record and the closure cell would "
                    f"disagree; thread the value explicitly instead")
        for cycle in graph.suspending_cycles():
            names = ", ".join(k.split("::", 1)[1] for k in cycle)
            for key in cycle:
                func = graph.funcs[key]
                if func.path != ctx.path:
                    continue
                yield self.found(
                    ctx, func.line,
                    f"{func.qualname} recurses through a suspending "
                    f"cycle ({names}) — the continuation set cannot be "
                    f"statically enumerated; convert the recursion to "
                    f"a loop over explicit state")
