"""MIG004 sdag-discipline: SDAG methods speak only When/Overlap/Atomic.

Section 2.4.2: an SDAG entry method expresses a chare's life cycle with
``when``/``overlap``/``atomic`` constructs, which the driver compiles
into a finite-state machine (:class:`repro.charm.sdag.SdagDriver`).  The
generator protocol is the construct surface — yielding anything else
(a string, a tuple, a bare ``yield``) is a directive the FSM rejects at
runtime, on the destination processor, possibly long after a migration.
And because everything *between* yields runs as an atomic block on the
processor, a blocking call there (``time.sleep``, a blocking ``recv``,
a lock acquire) stalls every chare on the PE: blocking belongs to
threads, events must return to the scheduler.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["SdagDiscipline"]

#: Call names that block the calling OS process.
_BLOCKING_NAMES = {"input", "sleep", "time.sleep"}
#: Method names that block when called on runtime/OS objects.
_BLOCKING_ATTRS = {"recv", "acquire"}

_DIRECTIVES = {"When", "Overlap", "Atomic"}


def _yield_problem(value: Optional[ast.expr]) -> Optional[str]:
    """Why a yielded expression is not an SDAG directive (None if OK)."""
    if value is None:
        return "a bare yield"
    if isinstance(value, ast.Call):
        name = astutil.call_name(value).split(".")[-1]
        if name in _DIRECTIVES:
            return None
        return f"a call to {name or 'an expression'}()"
    if isinstance(value, ast.Constant):
        return f"the constant {value.value!r}"
    if isinstance(value, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
        return "a container literal"
    # Names and attribute loads may hold a directive built earlier;
    # static analysis cannot tell, so give them the benefit of the doubt.
    return None


@register
class SdagDiscipline(Rule):
    """SDAG generator methods must yield directives and never block."""

    id = "MIG004"
    name = "sdag-discipline"
    severity = Severity.ERROR
    summary = ("SDAG generator methods may only yield When/Overlap/Atomic "
               "directives, and their atomic sections must not make "
               "blocking calls")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for mc in astutil.migratable_contexts(ctx.tree):
            if mc.kind != "sdag method":
                continue
            assert mc.cls is not None
            where = f"{mc.cls.name}.{mc.func.name}"
            for node in astutil.walk_shallow(mc.func):
                if isinstance(node, ast.Yield):
                    problem = _yield_problem(node.value)
                    if problem is not None:
                        yield self.found(
                            ctx, node,
                            f"SDAG method {where} yields {problem}; the "
                            f"driver accepts only When/Overlap/Atomic "
                            f"directives")
            # Blocking calls anywhere in the method body (including inside
            # Atomic(lambda: ...) thunks) stall the whole processor.
            for node in ast.walk(mc.func):
                if not isinstance(node, ast.Call):
                    continue
                name = astutil.call_name(node)
                is_blocking = name in _BLOCKING_NAMES or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in _BLOCKING_ATTRS)
                if is_blocking:
                    yield self.found(
                        ctx, node,
                        f"SDAG method {where} calls blocking {name}() "
                        f"inside an atomic section — events must return "
                        f"to the scheduler, only threads may block")
