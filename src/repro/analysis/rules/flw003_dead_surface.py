"""FLW003 dead-suspend-surface: a suspending helper nothing delegates to.

The compilability contract (``results/flow_report.json``) is computed
over the delegation closure of the thread bodies; a suspending helper
that no body reaches is surface the compiler must still understand but
that no flow of control exercises.  In practice these are left-overs of
a rewrite — the helper's callers were converted to call something else,
and the generator quietly became dead code that still *looks* like part
of the suspend protocol.

To stay quiet on legitimate exports, only helpers with module-private
names (``_foo``) or nested definitions are considered, and a single
by-name reference anywhere else in the module — a call, a delegation, a
mention in a data structure — keeps the helper alive.  Public helpers
and ``__all__`` entries are assumed to have cross-module callers.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register
from repro.analysis.flow.callgraph import CallGraph

__all__ = ["DeadSuspendSurface"]


def _module_all(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    for elt in getattr(stmt.value, "elts", []):
                        if isinstance(elt, ast.Constant) \
                                and isinstance(elt.value, str):
                            names.add(elt.value)
    return names


@register
class DeadSuspendSurface(Rule):
    """Suspending helper not reachable from any thread body."""

    id = "FLW003"
    name = "dead-suspend-surface"
    severity = Severity.WARNING
    summary = ("a private suspending helper that nothing references is "
               "dead suspend surface — delete it or wire it back into "
               "a thread body")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        graph = CallGraph.from_context(ctx)
        exported = _module_all(ctx.tree)
        for func in graph.functions_in(ctx.path):
            if not func.protocol:
                continue
            private = func.name.startswith("_")
            nested = func.parent is not None
            if not (private or nested) or func.name in exported:
                continue
            span = (func.node.lineno,
                    getattr(func.node, "end_lineno", func.node.lineno))
            referenced = False
            for node in ast.walk(ctx.tree):
                line = getattr(node, "lineno", None)
                if line is not None and span[0] <= line <= span[1]:
                    continue
                if (isinstance(node, ast.Name) and node.id == func.name) \
                        or (isinstance(node, ast.Attribute)
                            and node.attr == func.name):
                    referenced = True
                    break
            if not referenced:
                yield self.found(
                    ctx, func.node,
                    f"{func.qualname} is suspending ({func.why}) but "
                    f"nothing in this module references it — dead "
                    f"suspend surface; delete it or delegate to it "
                    f"from a thread body")
