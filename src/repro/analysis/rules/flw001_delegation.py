"""FLW001 lost-delegation: a suspending call whose directives go nowhere.

Every blocking operation in this codebase is a generator — ``mpi.recv``,
``comm.barrier``, a helper with its own ``yield "suspend"`` — and its
directive stream only reaches the scheduler when the caller delegates
with ``yield from``.  A *plain* call builds the generator object and
throws it away: no receive happens, no time is charged, no error is
raised.  This is the silent-no-op bug class the CPC papers make
impossible by construction (a cps call is syntactically different), and
the one bug a generator-based encoding cannot catch at runtime.

Flagged, inside any function:

* an expression statement ``f(...)`` whose target is *known* suspending
  (resolved to a runtime interface method like ``mpi.barrier``, or to a
  function in this module proven suspending by the fixed point);
* ``yield f(...)`` of a known-suspending target — the generator object
  itself is yielded as a bogus directive instead of being drained.

Only *known*-suspending targets are flagged (never the sound
"unknown ⇒ assume suspending" over-approximation), so passing bodies
around as values — ``spawn(lambda th: worker(th, i))``, storing a
generator to drive manually — stays clean.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import walk_shallow
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register
from repro.analysis.flow.callgraph import CallGraph

__all__ = ["LostDelegation"]


@register
class LostDelegation(Rule):
    """Suspending call not delegated via ``yield from``."""

    id = "FLW001"
    name = "lost-delegation"
    severity = Severity.ERROR
    summary = ("a suspending generator called without 'yield from' "
               "discards its directive stream — the operation silently "
               "never runs")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        graph = CallGraph.from_context(ctx)
        for func in graph.functions_in(ctx.path):
            for node in walk_shallow(func.node):
                call = None
                how = ""
                if isinstance(node, ast.Expr) \
                        and isinstance(node.value, ast.Call):
                    call = node.value
                    how = ("its result is discarded — delegate with "
                           "'yield from")
                elif isinstance(node, ast.Yield) \
                        and isinstance(node.value, ast.Call):
                    call = node.value
                    how = ("'yield' hands the generator object to the "
                           "scheduler as a bogus directive — use "
                           "'yield from")
                if call is None:
                    continue
                res = graph.resolve_call(call, func)
                if graph.resolution_protocol(res):
                    yield self.found(
                        ctx, call,
                        f"{res.label}() is suspending but {how} "
                        f"{res.label}(...)' so its directives reach "
                        f"the scheduler")
