"""MIG001 pup-completeness: ``__init__`` state must flow through ``pup()``.

Migration packs an object by running its single ``pup(p)`` traversal in
the sizing, packing, and unpacking phases (paper Section 3.1, the PUP
framework [19]).  A field assigned in ``__init__`` but never piped
through the pupper silently reverts to its default on the destination
processor; a field pupped but never initialized breaks the unpacking
phase, which runs against a default-constructed instance.  Because one
method serves both pack and unpack, per-phase branches must also visit
fields in the same order — a pack/unpack order mismatch shears every
later field in the buffer.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis import astutil
from repro.analysis.core import Finding, ModuleContext, Rule, Severity, register

__all__ = ["PupCompleteness"]

#: ``p.is_packing`` / ``is_unpacking`` / ``is_sizing`` phase tests.
_PHASE_PROPS = {"is_packing", "is_unpacking", "is_sizing"}


def _self_param(func: astutil.FuncDef) -> str:
    params = func.args.posonlyargs + func.args.args
    return params[0].arg if params else "self"


def _init_assigned_attrs(init: astutil.FuncDef) -> "dict[str, int]":
    """Attributes assigned on self anywhere in ``__init__`` -> first line."""
    self_name = _self_param(init)
    out: "dict[str, int]" = {}

    def note(target: ast.expr) -> None:
        for node in ast.walk(target):
            attr = astutil.self_attr_name(node, self_name)
            if attr is not None and attr not in out:
                out[attr] = node.lineno

    for node in astutil.walk_shallow(init):
        if isinstance(node, ast.Assign):
            for t in node.targets:
                note(t)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            note(node.target)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            note(node.target)
    return out


def _pup_touched_attrs(pup: astutil.FuncDef) -> "set[str]":
    """Every ``self.x`` the pup traversal reads or writes."""
    self_name = _self_param(pup)
    out: "set[str]" = set()
    for node in astutil.walk_shallow(pup):
        attr = astutil.self_attr_name(node, self_name)
        if attr is not None:
            out.add(attr)
    return out


def _ordered_attrs(nodes: List[ast.stmt], self_name: str) -> List[str]:
    """self-attributes referenced under ``nodes``, in source order, deduped."""
    seen: List[str] = []
    for stmt in nodes:
        for node in ast.walk(stmt):
            attr = astutil.self_attr_name(node, self_name)
            if attr is not None and attr not in seen:
                seen.append(attr)
    return seen


def _is_phase_test(test: ast.expr) -> bool:
    return any(isinstance(n, ast.Attribute) and n.attr in _PHASE_PROPS
               for n in ast.walk(test))


@register
class PupCompleteness(Rule):
    """Fields assigned in ``__init__`` must round-trip through ``pup()``."""

    id = "MIG001"
    name = "pup-completeness"
    severity = Severity.ERROR
    summary = ("every attribute assigned in __init__ of a puppable class "
               "must flow through pup(), and vice versa; pack/unpack "
               "branches must visit fields in the same order")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for cls in astutil.iter_classes(ctx.tree):
            pup = astutil.class_method(cls, "pup")
            if pup is None:
                continue
            init = astutil.class_method(cls, "__init__")
            if init is not None:
                init_attrs = _init_assigned_attrs(init)
                pup_attrs = _pup_touched_attrs(pup)
                for attr, line in sorted(init_attrs.items(),
                                         key=lambda kv: kv[1]):
                    if attr not in pup_attrs:
                        yield self.found(
                            ctx, line,
                            f"{cls.name}.__init__ assigns self.{attr} but "
                            f"pup() never packs it — the field silently "
                            f"resets on migration")
                for attr in sorted(pup_attrs - set(init_attrs)):
                    yield self.found(
                        ctx, pup,
                        f"{cls.name}.pup() traverses self.{attr} which "
                        f"__init__ never assigns — unpacking runs against "
                        f"a default-constructed instance")
            yield from self._check_phase_order(ctx, cls, pup)

    def _check_phase_order(self, ctx: ModuleContext, cls: ast.ClassDef,
                           pup: astutil.FuncDef) -> Iterator[Finding]:
        self_name = _self_param(pup)
        for node in astutil.walk_shallow(pup):
            if not isinstance(node, ast.If) or not _is_phase_test(node.test):
                continue
            a = _ordered_attrs(node.body, self_name)
            b = _ordered_attrs(node.orelse, self_name)
            if len(a) > 1 and set(a) == set(b) and a != b:
                yield self.found(
                    ctx, node,
                    f"{cls.name}.pup() packs fields in order "
                    f"{a} on one phase branch but {b} on the other — "
                    f"pack and unpack must traverse the same byte order")
