"""Shared AST queries for migralint rules.

The rules all reason about the same handful of program shapes — "is this
class a migratable object?", "is this function a thread body?", "which
module globals are mutable?" — so those queries live here, once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

__all__ = [
    "FuncDef",
    "MigratableContext",
    "call_name",
    "class_base_names",
    "has_pup_method",
    "is_migratable_class",
    "is_generator",
    "iter_classes",
    "iter_functions",
    "local_names",
    "migratable_contexts",
    "module_mutable_globals",
    "self_attr_name",
    "walk_shallow",
]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Conventional first-parameter names of migratable flow bodies: Cth
#: thread bodies take ``th``/``thread``, AMPI rank mains take ``mpi``.
THREAD_PARAM_NAMES = {"th", "thread", "mpi"}

#: Base-class names that make a class a migratable object in this repo.
MIGRATABLE_BASES = {"Chare", "Poser"}

#: Calls whose result is a mutable container (module-global detection).
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "OrderedDict", "Counter"}
_MUTABLE_DISPLAYS = (ast.List, ast.Dict, ast.Set,
                     ast.ListComp, ast.DictComp, ast.SetComp)


def walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function/class body without descending into nested scopes.

    Yields every node reachable from ``node`` except the interiors of
    nested ``def``/``class``/``lambda`` (the nested scope's *header* —
    decorators, defaults — is still visited).
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef, ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def is_generator(func: FuncDef) -> bool:
    """True if the function's own body contains yield / yield from."""
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in walk_shallow(func))


def call_name(call: ast.Call) -> str:
    """Dotted name of a call target: ``open``, ``threading.Lock``, ...

    Attribute chains longer than two segments keep only the last two
    (``a.b.threading.Lock`` -> ``threading.Lock``); non-name targets
    come back as ``""``.
    """
    fn = call.func
    if isinstance(fn, ast.Name):
        return fn.id
    if isinstance(fn, ast.Attribute):
        if isinstance(fn.value, ast.Name):
            return f"{fn.value.id}.{fn.attr}"
        if isinstance(fn.value, ast.Attribute):
            return f"{fn.value.attr}.{fn.attr}"
        return fn.attr
    return ""


def class_base_names(cls: ast.ClassDef) -> Set[str]:
    """Unqualified names of a class's bases."""
    names: Set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Every class definition in the module, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_functions(tree: ast.AST) -> Iterator[FuncDef]:
    """Every function definition under ``tree``, at any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def class_method(cls: ast.ClassDef, name: str) -> Optional[FuncDef]:
    """A directly defined method of ``cls`` (no inheritance), or None."""
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and item.name == name:
            return item
    return None


def has_pup_method(cls: ast.ClassDef) -> bool:
    return class_method(cls, "pup") is not None


def is_pup_registered(cls: ast.ClassDef) -> bool:
    """True when decorated with ``@pup_register`` (with or without args)."""
    for dec in cls.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "pup_register":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "pup_register":
            return True
    return False


def is_migratable_class(cls: ast.ClassDef) -> bool:
    """Chare/Poser subclass, ``@pup_register``-ed, or pup-bearing."""
    return bool(class_base_names(cls) & MIGRATABLE_BASES) \
        or is_pup_registered(cls) or has_pup_method(cls)


def self_attr_name(node: ast.AST, self_name: str) -> Optional[str]:
    """``"x"`` for an ``<self>.x`` attribute node, else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == self_name:
        return node.attr
    return None


def module_mutable_globals(tree: ast.Module) -> Dict[str, int]:
    """Module-level names bound to mutable containers -> definition line.

    Detects list/dict/set displays and comprehensions plus calls to the
    standard mutable constructors.  Dunder/private names (``__all__``,
    ``_cache``) are excluded: they belong to import machinery and module
    internals, not to program state a thread might share.
    """
    out: Dict[str, int] = {}
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        mutable = isinstance(value, _MUTABLE_DISPLAYS) or (
            isinstance(value, ast.Call)
            and call_name(value).split(".")[-1] in _MUTABLE_CALLS)
        if not mutable:
            continue
        for t in targets:
            if isinstance(t, ast.Name) and not t.id.startswith("_"):
                out[t.id] = stmt.lineno
    return out


def local_names(func: FuncDef) -> Set[str]:
    """Names bound locally in ``func`` (params + assignments), minus globals.

    A name declared ``global`` stays out of the set, so references to it
    resolve to the module scope as Python itself would.
    """
    args = func.args
    names = {a.arg for a in (args.posonlyargs + args.args + args.kwonlyargs)}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global: Set[str] = set()
    for node in walk_shallow(func):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    names.add(t.id)
        elif isinstance(node, ast.comprehension):
            for t in ast.walk(node.target):
                if isinstance(t, ast.Name):
                    names.add(t.id)
    return names - declared_global


@dataclass(frozen=True)
class MigratableContext:
    """One function whose frame migrates with a flow of control."""

    func: FuncDef
    #: "sdag method" | "chare method" | "poser method" | "thread body"
    kind: str
    cls: Optional[ast.ClassDef] = None

    @property
    def describe(self) -> str:
        if self.cls is not None:
            return f"{self.kind} {self.cls.name}.{self.func.name}"
        return f"{self.kind} {self.func.name}"


def migratable_contexts(tree: ast.Module) -> List[MigratableContext]:
    """Every function body that runs as (part of) a migratable flow.

    Three shapes, per the repo's conventions:

    * methods of ``Chare`` subclasses — generator methods are SDAG entry
      methods, the rest plain entry methods;
    * methods of ``Poser`` subclasses (optimistically executed, PUP
      snapshots around every event);
    * generator functions whose first parameter is ``th``/``thread``/
      ``mpi`` — Cth thread bodies and AMPI rank mains, wherever defined.
    """
    out: List[MigratableContext] = []
    methods: Set[int] = set()
    for cls in iter_classes(tree):
        bases = class_base_names(cls)
        if not bases & MIGRATABLE_BASES:
            continue
        label = "chare" if "Chare" in bases else "poser"
        for item in cls.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                kind = ("sdag method" if label == "chare" and is_generator(item)
                        else f"{label} method")
                out.append(MigratableContext(item, kind, cls))
                methods.add(id(item))
    for func in iter_functions(tree):
        if id(func) in methods:
            continue
        params = func.args.posonlyargs + func.args.args
        if params and params[0].arg in THREAD_PARAM_NAMES \
                and is_generator(func):
            out.append(MigratableContext(func, "thread body"))
    return out
