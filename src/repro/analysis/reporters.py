"""Finding reporters: one-line human output and stable JSON.

Both render from the same sorted finding list, so the two formats always
agree; the JSON shape is versioned and key-sorted so tools (and the CLI
smoke tests) can rely on byte-stable output for a given tree.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.core import Finding

__all__ = ["render_human", "render_json", "JSON_VERSION"]

#: Bumped whenever the JSON schema changes shape.
JSON_VERSION = 1


def _visible(findings: Sequence[Finding], show_suppressed: bool):
    return [f for f in findings if show_suppressed or not f.suppressed]


def render_human(findings: Sequence[Finding],
                 show_suppressed: bool = False) -> str:
    """Compiler-style ``path:line: RULE severity: message`` lines + summary."""
    shown = _visible(findings, show_suppressed)
    lines: List[str] = [f.render() for f in shown]
    active = sum(1 for f in findings if not f.suppressed)
    suppressed = len(findings) - active
    if active == 0:
        summary = "migralint: clean"
    else:
        summary = f"migralint: {active} finding{'s' if active != 1 else ''}"
    if suppressed:
        summary += f" ({suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(findings: Sequence[Finding],
                show_suppressed: bool = True) -> str:
    """Stable JSON document (sorted keys, suppressed findings included)."""
    shown = _visible(findings, show_suppressed)
    doc = {
        "version": JSON_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity.value,
                "path": f.path,
                "line": f.line,
                "message": f.message,
                "suppressed": f.suppressed,
            }
            for f in shown
        ],
        "summary": {
            "total": len(findings),
            "active": sum(1 for f in findings if not f.suppressed),
            "suppressed": sum(1 for f in findings if f.suppressed),
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True)
