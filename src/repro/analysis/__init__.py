"""migralint: static migration-safety analysis for repro programs.

The paper's central contract is that a flow of control is *migratable*
only if user code follows three disciplines: every byte of state travels
through the PUP framework (Section 3.1), global variables are privatized
through the swap-global GOT mechanism (Section 3.1.1), and all pointers
live at isomalloc addresses that stay valid across processors (Section
3.4.2).  Nothing in the runtime can enforce those disciplines at
migration time — a forgotten ``pup()`` field or a raw module-level global
in a thread body fails silently.  This package makes the contract
machine-checkable: an AST-based analyzer with a pluggable rule framework,
per-rule severities, inline ``# migralint: disable=RULE`` suppressions,
and human/JSON reporters.

Run it as ``python -m repro.analysis <paths>`` or via the ``migralint``
console script; ``tests/test_lint.py`` runs it over the whole shipped
tree as a permanent gate.

The ``repro.analysis.flow`` subpackage adds the interprocedural layer:
per-function CFGs with explicit suspend points, a module-set call graph
with fixed-point suspends inference, and the compilability report
(``python -m repro.analysis flowreport``) that classifies every thread
body as COMPILABLE / NEEDS-REWRITE / OPAQUE for the thread→event
compilation path (paper §2, ROADMAP item 2).

Shipped rules
-------------
========  ==============================================================
MIG001    pup-completeness: ``__init__`` fields vs. ``pup()`` traversal
MIG002    unprivatized-global: raw module globals in migratable bodies
MIG003    non-migratable-state: locks/files/sockets held across yields
MIG004    sdag-discipline: SDAG methods yield only When/Overlap/Atomic
MIG005    isomalloc-escape: simulated addresses leaking into host state
KRN001    kernel-bypass: heap queues/run loops outside the event kernel
EXC001    worker-purity: sweep workers ship cells as plain data
OBS001    module-state: no mutable module-scope state in runtime pkgs
FLW001    lost-delegation: suspending call without ``yield from``
FLW002    unsplittable: suspend under with/try-finally/except, bare
          yield, or closure capture mutated across a suspend
FLW003    dead-suspend-surface: unreferenced private suspending helper
DET001    wall-clock-in-sim: wall clock / unseeded RNG in runtime pkgs
========  ==============================================================
"""

from __future__ import annotations

from repro.analysis.core import (
    Finding,
    ModuleContext,
    Rule,
    Severity,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
)
from repro.analysis.reporters import render_human, render_json

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "render_human",
    "render_json",
]
