"""Register files and minimal user-level context switching (paper Figure 10).

The paper observes (Section 4.3) that a context switch initiated by a
subroutine call only needs to save the *callee-saved* registers of the
architecture's calling convention — scratch registers are the compiler's
problem — and exhibits minimal swap routines for 32- and 64-bit x86 that run
in 16 ns and 18 ns on a 2.2 GHz Athlon64.

We reproduce those routines instruction by instruction against the simulated
machine: each ``push``/``pop``/``mov`` really moves a word between the
simulated register file and the simulated stack, so the artifact is
executable, and the instruction/memory-op counts drive the modeled times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ThreadError
from repro.vm.addrspace import AddressSpace

__all__ = ["RegisterFile", "SwapInstruction", "MinimalSwap", "SWAP32", "SWAP64"]


#: Callee-saved registers per the System V calling conventions the paper's
#: routines implement.  ``sp`` is the stack pointer (esp/rsp).
CALLEE_SAVED = {
    "x86_32": ("ebp", "ebx", "esi", "edi"),
    "x86_64": ("rdi", "rbp", "rbx", "r12", "r13", "r14", "r15"),
}

WORD_BYTES = {"x86_32": 4, "x86_64": 8}


class RegisterFile:
    """A thread's architectural register state.

    Only the registers that survive a subroutine call are represented —
    exactly the state the minimal swap routines preserve.
    """

    def __init__(self, arch: str = "x86_32"):
        if arch not in CALLEE_SAVED:
            raise ThreadError(f"unknown architecture {arch!r}")
        self.arch = arch
        self.word_bytes = WORD_BYTES[arch]
        self.regs: Dict[str, int] = {name: 0 for name in CALLEE_SAVED[arch]}
        self.regs["sp"] = 0

    def __getitem__(self, name: str) -> int:
        return self.regs[name]

    def __setitem__(self, name: str, value: int) -> None:
        if name not in self.regs:
            raise ThreadError(f"no register {name!r} on {self.arch}")
        self.regs[name] = value & ((1 << (self.word_bytes * 8)) - 1)

    def snapshot(self) -> Dict[str, int]:
        """Copy of all register values (for tests and migration images)."""
        return dict(self.regs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RegisterFile {self.arch} sp={self.regs['sp']:#x}>"


@dataclass(frozen=True)
class SwapInstruction:
    """One instruction of a swap routine: opcode, operand, and kind.

    ``kind`` is ``"mem"`` for instructions that touch memory (push/pop,
    loads/stores) and ``"alu"`` for register-to-register moves; the two
    classes have different modeled cycle costs.
    """

    op: str
    operand: str
    kind: str


class MinimalSwap:
    """An executable model of one of Figure 10's swap routines.

    Parameters
    ----------
    arch:
        ``"x86_32"`` or ``"x86_64"``.

    The routine's semantics, exactly as in the paper:

    1. push every callee-saved register onto the *old* thread's stack;
    2. store the old stack pointer through the ``old`` context pointer;
    3. load the new stack pointer through the ``new`` context pointer;
    4. pop every callee-saved register from the *new* thread's stack;
    5. return.
    """

    #: Modeled cycles per memory-touching instruction (L1-hit push/pop).
    MEM_CYCLES = 2.5
    #: Modeled cycles per register-to-register instruction.
    ALU_CYCLES = 1.0

    def __init__(self, arch: str):
        if arch not in CALLEE_SAVED:
            raise ThreadError(f"unknown architecture {arch!r}")
        self.arch = arch
        self.word = WORD_BYTES[arch]
        self.saved = CALLEE_SAVED[arch]
        self.instructions: List[SwapInstruction] = self._build()

    def _build(self) -> List[SwapInstruction]:
        ins: List[SwapInstruction] = []
        if self.arch == "x86_32":
            # Arguments come in on the stack in the 32-bit convention.
            ins.append(SwapInstruction("mov", "4(%esp),%eax", "mem"))
            ins.append(SwapInstruction("mov", "8(%esp),%ecx", "mem"))
        for reg in self.saved:
            ins.append(SwapInstruction("push", f"%{reg}", "mem"))
        ins.append(SwapInstruction("mov", "sp->(old)", "mem"))
        ins.append(SwapInstruction("mov", "(new)->sp", "mem"))
        for reg in reversed(self.saved):
            ins.append(SwapInstruction("pop", f"%{reg}", "mem"))
        ins.append(SwapInstruction("ret", "", "mem"))
        return ins

    # -- modeled cost -------------------------------------------------------

    @property
    def instruction_count(self) -> int:
        """Total instructions in the routine."""
        return len(self.instructions)

    @property
    def memory_ops(self) -> int:
        """Instructions that touch memory."""
        return sum(1 for i in self.instructions if i.kind == "mem")

    def cycles(self) -> float:
        """Modeled cycle count of one swap."""
        return sum(self.MEM_CYCLES if i.kind == "mem" else self.ALU_CYCLES
                   for i in self.instructions)

    def cost_ns(self, cpu_ghz: float) -> float:
        """Modeled nanoseconds of one swap at the given clock rate."""
        return self.cycles() / cpu_ghz

    # -- executable semantics ----------------------------------------------

    def execute(self, space: AddressSpace, regs: RegisterFile,
                old_ctx_addr: int, new_ctx_addr: int) -> None:
        """Run the swap against simulated memory.

        ``old_ctx_addr`` and ``new_ctx_addr`` are the addresses of the two
        threads' context slots (each holds a saved stack pointer).  On
        entry ``regs`` holds the outgoing thread's registers; on exit it
        holds the incoming thread's registers, restored from its stack.
        """
        if regs.arch != self.arch:
            raise ThreadError(
                f"register file arch {regs.arch} != swap arch {self.arch}"
            )
        word = self.word
        # 1. push callee-saved registers onto the old stack
        sp = regs["sp"]
        for reg in self.saved:
            sp -= word
            space.write(sp, regs[reg].to_bytes(word, "little"))
        # 2. save old stack pointer through the old context pointer
        space.write(old_ctx_addr, sp.to_bytes(word, "little"))
        # 3. load the new stack pointer
        sp = int.from_bytes(space.read(new_ctx_addr, word), "little")
        # 4. pop callee-saved registers from the new stack
        for reg in reversed(self.saved):
            regs[reg] = int.from_bytes(space.read(sp, word), "little")
            sp += word
        regs["sp"] = sp

    @staticmethod
    def seed_context(space: AddressSpace, regs_arch: str, ctx_addr: int,
                     stack_top: int,
                     initial_regs: Sequence[Tuple[str, int]] = ()) -> None:
        """Prepare a fresh thread's stack so the swap can 'restore' it.

        Writes an initial callee-saved register image at the top of the new
        thread's stack and stores the resulting stack pointer in the
        thread's context slot — what a thread library's ``create`` does
        before the first switch to a thread.
        """
        word = WORD_BYTES[regs_arch]
        saved = CALLEE_SAVED[regs_arch]
        values = dict(initial_regs)
        sp = stack_top
        for reg in saved:
            sp -= word
            space.write(sp, values.get(reg, 0).to_bytes(word, "little"))
        space.write(ctx_addr, sp.to_bytes(word, "little"))


#: Canonical instances of the two routines in Figure 10.
SWAP32 = MinimalSwap("x86_32")
SWAP64 = MinimalSwap("x86_64")
