"""The PUP (Pack/UnPack) framework (paper Section 3.1.1, reference [19]).

Charm++'s PUP framework lets one traversal routine serve three phases:
*sizing* (how many bytes will this object need?), *packing* (write the
object into a buffer), and *unpacking* (rebuild the object from a buffer).
A class participates by implementing a single ``pup(p)`` method that pipes
every field through the pupper ``p``; the same method runs in all three
phases.

Example
-------
>>> class Particle:
...     def __init__(self, x=0.0, v=0.0, tags=()):
...         self.x, self.v, self.tags = x, v, list(tags)
...     def pup(self, p):
...         self.x = p.double(self.x)
...         self.v = p.double(self.v)
...         self.tags = p.list_int(self.tags)
>>> pup_register(Particle)
>>> blob = pup_pack(Particle(1.5, -2.0, [1, 2, 3]))
>>> q = pup_unpack(blob)
>>> (q.x, q.v, q.tags)
(1.5, -2.0, [1, 2, 3])
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Dict, List, Optional, Protocol, Type, runtime_checkable

import numpy as np

from repro.errors import PupError

__all__ = [
    "Puppable",
    "SizingPupper",
    "PackingPupper",
    "UnpackingPupper",
    "pup_register",
    "pup_pack",
    "pup_unpack",
    "pup_size",
    "pup_seal",
    "pup_unseal",
    "pup_pack_checked",
    "pup_unpack_checked",
]


@runtime_checkable
class Puppable(Protocol):
    """Anything with a ``pup(p)`` traversal method."""

    def pup(self, p: "BasePupper") -> None:  # pragma: no cover - protocol
        ...


#: Registry of puppable classes for polymorphic pack/unpack.  Write-once
#: per class at decoration (import) time, mapping stable wire names to
#: types; it holds no per-run state — re-registering the same name is
#: rejected — so identical runs see the identical registry.
# migralint: disable=OBS001
_REGISTRY: Dict[str, Type[Any]] = {}


def _fresh_instance(cls: Type[Any]) -> Any:
    """Build the blank instance ``pup`` runs against when unpacking.

    Mirrors Charm++'s migration constructor: the class is default
    constructed if possible, so ``pup`` methods written in the natural
    ``self.x = p.double(self.x)`` style find their attributes initialized.
    Classes without a zero-argument constructor fall back to ``__new__``
    and must write a ``pup`` that tolerates missing attributes when
    ``p.is_unpacking``.
    """
    try:
        return cls()
    except TypeError:
        return cls.__new__(cls)


def pup_register(cls: Type[Any], name: Optional[str] = None) -> Type[Any]:
    """Register a puppable class (usable as a decorator).

    Registration gives the class a stable wire name so :func:`pup_unpack`
    can reconstruct the right type from a buffer.
    """
    key = name or cls.__qualname__
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise PupError(f"pup name {key!r} already registered to {existing}")
    _REGISTRY[key] = cls
    cls._pup_name = key
    return cls


class BasePupper:
    """Shared primitive-dispatch plumbing for the three pupper phases.

    Subclasses override :meth:`_prim` (fixed-size primitives via
    :mod:`struct`) and :meth:`_blob` (length-prefixed byte strings); the
    typed convenience methods below are phase-independent.
    """

    #: Which phase this pupper runs ("sizing" | "packing" | "unpacking").
    phase = "?"

    # -- error context -------------------------------------------------------
    # The pupper tracks which registered class it is traversing (a stack,
    # for nested obj() fields) and a running field counter, so a mismatch
    # surfaces as "PupError: ... in Particle (field #3, unpacking)" instead
    # of a bare struct.error with no hint of the offending pup() method.

    def _enter(self, name: str) -> None:
        if not hasattr(self, "_ctx"):
            self._ctx: List[str] = []
        self._ctx.append(name)

    def _exit(self) -> None:
        self._ctx.pop()

    def _tick(self) -> None:
        self._fields = getattr(self, "_fields", 0) + 1

    def _where(self) -> str:
        stack = getattr(self, "_ctx", None)
        ctx = ".".join(stack) if stack else "<top-level value>"
        return f"in {ctx} (field #{getattr(self, '_fields', 0)}, {self.phase})"

    @property
    def is_sizing(self) -> bool:
        """True in the sizing phase."""
        return self.phase == "sizing"

    @property
    def is_packing(self) -> bool:
        """True in the packing phase."""
        return self.phase == "packing"

    @property
    def is_unpacking(self) -> bool:
        """True in the unpacking phase."""
        return self.phase == "unpacking"

    # -- to be provided by phase subclasses --------------------------------

    def _prim(self, fmt: str, value: Any) -> Any:
        raise NotImplementedError

    def _blob(self, value: Optional[bytes]) -> bytes:
        raise NotImplementedError

    # -- typed field methods -------------------------------------------------

    def int(self, v: int = 0) -> int:
        """A signed 64-bit integer field."""
        return self._prim("<q", v)

    def uint(self, v: int = 0) -> int:
        """An unsigned 64-bit integer field."""
        return self._prim("<Q", v)

    def double(self, v: float = 0.0) -> float:
        """A 64-bit float field."""
        return self._prim("<d", v)

    def bool(self, v: bool = False) -> bool:
        """A boolean field."""
        return bool(self._prim("<B", 1 if v else 0))

    def bytes(self, v: bytes = b"") -> bytes:
        """A variable-length byte-string field."""
        return self._blob(v)

    def str(self, v: str = "") -> str:
        """A UTF-8 string field."""
        if self.is_unpacking:
            return self._blob(None).decode("utf-8")
        self._blob(v.encode("utf-8"))
        return v

    def list_int(self, v: Optional[List[int]] = None) -> List[int]:
        """A list of signed 64-bit integers."""
        v = v or []
        n = self.int(len(v))
        if self.is_unpacking:
            return [self.int() for _ in range(n)]
        for item in v:
            self.int(item)
        return v

    def list_double(self, v: Optional[List[float]] = None) -> List[float]:
        """A list of 64-bit floats."""
        v = v or []
        n = self.int(len(v))
        if self.is_unpacking:
            return [self.double() for _ in range(n)]
        for item in v:
            self.double(item)
        return v

    def array(self, v: Optional[np.ndarray] = None) -> np.ndarray:
        """A NumPy array field (dtype and shape preserved)."""
        if self.is_unpacking:
            dtype = np.dtype(self._blob(None).decode("ascii"))
            ndim = self.int()
            shape = tuple(self.int() for _ in range(ndim))
            raw = self._blob(None)
            return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
        if v is None:
            raise PupError("array field requires a value when sizing/packing")
        self._blob(v.dtype.str.encode("ascii"))
        self.int(v.ndim)
        for dim in v.shape:
            self.int(dim)
        self._blob(np.ascontiguousarray(v).tobytes())
        return v

    def obj(self, v: Optional[Any] = None) -> Any:
        """A nested puppable object field (polymorphic via the registry)."""
        if self.is_unpacking:
            name = self._blob(None).decode("utf-8")
            cls = _REGISTRY.get(name)
            if cls is None:
                raise PupError(f"unpacking unknown pup class {name!r}")
            inst = _fresh_instance(cls)
            self._enter(name)
            try:
                inst.pup(self)
            finally:
                self._exit()
            return inst
        if v is None:
            raise PupError("obj field requires a value when sizing/packing")
        name = getattr(type(v), "_pup_name", None)
        if name is None:
            raise PupError(f"{type(v).__name__} is not pup_register'ed")
        self._blob(name.encode("utf-8"))
        self._enter(name)
        try:
            v.pup(self)
        finally:
            self._exit()
        return v

    def list_obj(self, v: Optional[List[Any]] = None) -> List[Any]:
        """A list of nested puppable objects."""
        v = v or []
        n = self.int(len(v))
        if self.is_unpacking:
            return [self.obj() for _ in range(n)]
        for item in v:
            self.obj(item)
        return v


class SizingPupper(BasePupper):
    """Phase 1: accumulate the byte size the packed object will need."""

    phase = "sizing"

    def __init__(self) -> None:
        self.size = 0

    def _prim(self, fmt: str, value: Any) -> Any:
        self._tick()
        self.size += struct.calcsize(fmt)
        return value

    def _blob(self, value: Optional[bytes]) -> bytes:
        assert value is not None
        self._tick()
        self.size += 8 + len(value)
        return value


class PackingPupper(BasePupper):
    """Phase 2: write fields into a buffer."""

    phase = "packing"

    def __init__(self) -> None:
        self._chunks: List[bytes] = []

    def _prim(self, fmt: str, value: Any) -> Any:
        self._tick()
        try:
            self._chunks.append(struct.pack(fmt, value))
        except struct.error as e:
            raise PupError(
                f"cannot pack {value!r} as {fmt!r} {self._where()}: {e}"
            ) from None
        return value

    def _blob(self, value: Optional[bytes]) -> bytes:
        assert value is not None
        self._tick()
        self._chunks.append(struct.pack("<Q", len(value)))
        self._chunks.append(value)
        return value

    def buffer(self) -> bytes:
        """The packed bytes written so far."""
        return b"".join(self._chunks)


class UnpackingPupper(BasePupper):
    """Phase 3: read fields back out of a buffer."""

    phase = "unpacking"

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _prim(self, fmt: str, value: Any) -> Any:
        self._tick()
        size = struct.calcsize(fmt)
        if self._offset + size > len(self._data):
            raise PupError(
                f"unpack of {fmt!r} ran past end of buffer {self._where()} "
                f"— truncated blob or pup() size mismatch")
        out = struct.unpack_from(fmt, self._data, self._offset)[0]
        self._offset += size
        return out

    def _blob(self, value: Optional[bytes]) -> bytes:
        n = self._prim("<Q", 0)
        if self._offset + n > len(self._data):
            raise PupError(
                f"unpack of a {n}-byte blob ran past end of buffer "
                f"{self._where()} — truncated blob or pup() size mismatch")
        out = self._data[self._offset:self._offset + n]
        self._offset += n
        return bytes(out)

    @property
    def exhausted(self) -> bool:
        """True when every byte of the buffer has been consumed."""
        return self._offset == len(self._data)


# ---------------------------------------------------------------------------
# convenience entry points
# ---------------------------------------------------------------------------

def pup_size(obj: Puppable) -> int:
    """Bytes :func:`pup_pack` will produce for ``obj`` (sizing phase)."""
    p = SizingPupper()
    name = getattr(type(obj), "_pup_name", type(obj).__qualname__)
    p._blob(name.encode())
    p._enter(name)
    try:
        obj.pup(p)
    finally:
        p._exit()
    return p.size


def pup_pack(obj: Puppable) -> bytes:
    """Pack a registered puppable object into bytes."""
    name = getattr(type(obj), "_pup_name", None)
    if name is None:
        raise PupError(f"{type(obj).__name__} is not pup_register'ed")
    p = PackingPupper()
    p._blob(name.encode("utf-8"))
    p._enter(name)
    try:
        obj.pup(p)
    finally:
        p._exit()
    return p.buffer()


def pup_unpack(data: bytes) -> Any:
    """Rebuild a registered puppable object from :func:`pup_pack` output."""
    p = UnpackingPupper(data)
    name = p._blob(None).decode("utf-8")
    cls = _REGISTRY.get(name)
    if cls is None:
        raise PupError(f"unpacking unknown pup class {name!r}")
    inst = _fresh_instance(cls)
    p._enter(name)
    try:
        inst.pup(p)
    finally:
        p._exit()
    if not p.exhausted:
        raise PupError(
            f"{name}: {len(p._data) - p._offset} trailing bytes after "
            f"unpack — over-long blob or pup() asymmetry")
    return inst


# ---------------------------------------------------------------------------
# integrity envelope
# ---------------------------------------------------------------------------
#
# A plain pup stream detects *structural* damage (truncation, over-long
# blobs, mistyped fields) but a flipped byte inside field *content* decodes
# to silently wrong data — the classic serialization failure mode.  Blobs
# that cross an unreliable boundary (the simulated checkpoint disk, chaos
# tests) are therefore sealed: a magic tag, the payload length, and a CRC32
# make any single-byte corruption loudly detectable as a PupError.

_SEAL_MAGIC = b"PUP1"
_SEAL_HEADER = struct.Struct("<4sQI")


def pup_seal(blob: bytes) -> bytes:
    """Wrap packed bytes in a magic + length + CRC32 integrity envelope."""
    return _SEAL_HEADER.pack(_SEAL_MAGIC, len(blob),
                             zlib.crc32(blob) & 0xFFFFFFFF) + blob


def pup_unseal(data: bytes) -> bytes:
    """Verify and strip a :func:`pup_seal` envelope.

    Raises
    ------
    PupError
        If the magic, length, or checksum does not match — i.e. the blob
        was corrupted or truncated in storage/transit.  Never returns
        silently wrong bytes.
    """
    if len(data) < _SEAL_HEADER.size:
        raise PupError(f"sealed blob too short ({len(data)} bytes) — "
                       f"truncated envelope")
    magic, length, crc = _SEAL_HEADER.unpack_from(data, 0)
    if magic != _SEAL_MAGIC:
        raise PupError(f"bad seal magic {magic!r} — not a sealed pup blob")
    payload = data[_SEAL_HEADER.size:]
    if len(payload) != length:
        raise PupError(f"sealed blob length mismatch: header says {length}, "
                       f"got {len(payload)} bytes — truncated or padded")
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise PupError("sealed blob checksum mismatch — corrupted contents")
    return payload


def pup_pack_checked(obj: Puppable) -> bytes:
    """:func:`pup_pack` plus the integrity envelope of :func:`pup_seal`."""
    return pup_seal(pup_pack(obj))


def pup_unpack_checked(data: bytes) -> Any:
    """Inverse of :func:`pup_pack_checked`; corruption raises PupError."""
    return pup_unpack(pup_unseal(data))


# ---------------------------------------------------------------------------
# dynamic value codec (used by checkpoints and migration images)
# ---------------------------------------------------------------------------

#: Type tags for the dynamic value codec.
_VT_NONE, _VT_BOOL, _VT_INT, _VT_FLOAT, _VT_BYTES, _VT_STR = 0, 1, 2, 3, 4, 5
_VT_LIST, _VT_TUPLE, _VT_DICT, _VT_ARRAY = 6, 7, 8, 9


def _pack_value_into(p: PackingPupper, value: Any) -> None:
    if value is None:
        p.int(_VT_NONE)
    elif isinstance(value, bool):
        p.int(_VT_BOOL)
        p.bool(value)
    elif isinstance(value, int):
        p.int(_VT_INT)
        p.int(value)
    elif isinstance(value, float):
        p.int(_VT_FLOAT)
        p.double(value)
    elif isinstance(value, (bytes, bytearray)):
        p.int(_VT_BYTES)
        p.bytes(bytes(value))
    elif isinstance(value, str):
        p.int(_VT_STR)
        p.str(value)
    elif isinstance(value, np.ndarray):
        p.int(_VT_ARRAY)
        p.array(value)
    elif isinstance(value, (list, tuple)):
        p.int(_VT_LIST if isinstance(value, list) else _VT_TUPLE)
        p.int(len(value))
        for item in value:
            _pack_value_into(p, item)
    elif isinstance(value, dict):
        p.int(_VT_DICT)
        p.int(len(value))
        for k, v in value.items():
            _pack_value_into(p, k)
            _pack_value_into(p, v)
    else:
        raise PupError(f"pack_value cannot encode {type(value).__name__}")


def _unpack_value_from(p: UnpackingPupper) -> Any:
    tag = p.int()
    if tag == _VT_NONE:
        return None
    if tag == _VT_BOOL:
        return p.bool()
    if tag == _VT_INT:
        return p.int()
    if tag == _VT_FLOAT:
        return p.double()
    if tag == _VT_BYTES:
        return p.bytes()
    if tag == _VT_STR:
        return p.str()
    if tag == _VT_ARRAY:
        return p.array()
    if tag in (_VT_LIST, _VT_TUPLE):
        n = p.int()
        items = [_unpack_value_from(p) for _ in range(n)]
        return items if tag == _VT_LIST else tuple(items)
    if tag == _VT_DICT:
        n = p.int()
        return {(_unpack_value_from(p)): _unpack_value_from(p)
                for _ in range(n)}
    raise PupError(f"pack_value stream corrupt: unknown tag {tag}")


def pack_value(value: Any) -> bytes:
    """Serialize a JSON-like value tree (plus bytes and NumPy arrays).

    Used wherever a migration or checkpoint image — a nest of dicts,
    byte strings, and numbers — must become real bytes on the simulated
    disk or wire.  Inverse of :func:`unpack_value`.
    """
    p = PackingPupper()
    _pack_value_into(p, value)
    return p.buffer()


def unpack_value(data: bytes) -> Any:
    """Rebuild a value tree from :func:`pack_value` output."""
    p = UnpackingPupper(data)
    out = _unpack_value_from(p)
    if not p.exhausted:
        raise PupError("trailing bytes after unpack_value")
    return out
