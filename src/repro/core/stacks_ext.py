"""Beyond the paper: k-slot memory-aliasing stacks.

The paper's memory-aliasing technique (§3.4.3) uses *one* common stack
address, so it shares stack copying's SMP limitation: one active thread per
address space.  The natural extension — flagged in DESIGN.md §6 as ours,
not the paper's — is a small *pool* of k common addresses.  Each thread is
pinned to one slot at creation (its address never changes, so its pointers
stay valid and migration works exactly as before, to the same slot index on
the destination), threads in different slots can run simultaneously, and
the virtual-address cost is k stacks instead of one.

``k = 1`` reproduces the paper's technique exactly; ``k = cores`` removes
the SMP ceiling at a k-fold VA cost still far below isomalloc's
total-threads-proportional consumption.  The SMP ablation quantifies the
interpolation.
"""

from __future__ import annotations

from typing import List

from repro.errors import MigrationError, ThreadError
from repro.core.stacks import MemoryAliasStacks, StackManager, StackRecord
from repro.sim.platform import PlatformProfile
from repro.vm.addrspace import AddressSpace

__all__ = ["MultiSlotAliasStacks"]


class MultiSlotAliasStacks(StackManager):
    """Memory aliasing with ``slots`` independent common stack addresses."""

    technique = "memory_alias_k"
    concurrent_active = True     # up to ``slots`` threads at once

    def __init__(self, space: AddressSpace, profile: PlatformProfile,
                 stack_bytes: int = 64 * 1024, slots: int = 2):
        super().__init__(space, profile, stack_bytes)
        if slots <= 0:
            raise ThreadError("need at least one alias slot")
        stack_region = space.layout.regions["stack"]
        stride = self.stack_bytes + space.layout.page_size  # guard gap
        if slots * stride > stack_region.size:
            raise ThreadError(
                f"{slots} alias slots of {self.stack_bytes} bytes do not "
                f"fit the stack region")
        self.slots: List[MemoryAliasStacks] = [
            MemoryAliasStacks(space, profile, stack_bytes,
                              base_addr=stack_region.start + i * stride)
            for i in range(slots)
        ]
        self._next_slot = 0

    @property
    def num_slots(self) -> int:
        """Number of concurrently-active address classes."""
        return len(self.slots)

    def _slot_of(self, rec: StackRecord) -> MemoryAliasStacks:
        return self.slots[rec.address_class]

    # -- lifecycle ------------------------------------------------------------

    def create_stack(self) -> StackRecord:
        index = self._next_slot
        self._next_slot = (self._next_slot + 1) % len(self.slots)
        rec = self.slots[index].create_stack()
        rec.address_class = index
        return rec

    def destroy_stack(self, rec: StackRecord) -> None:
        self._slot_of(rec).destroy_stack(rec)

    # -- switching ------------------------------------------------------------

    def switch_in(self, rec: StackRecord) -> float:
        cost = self._slot_of(rec).switch_in(rec)
        self.switch_in_count += 1
        return cost

    def switch_out(self, rec: StackRecord) -> float:
        cost = self._slot_of(rec).switch_out(rec)
        self.switch_out_count += 1
        return cost

    def stack_read(self, rec: StackRecord, offset: int, length: int) -> bytes:
        return self._slot_of(rec).stack_read(rec, offset, length)

    def stack_write(self, rec: StackRecord, offset: int,
                    payload: bytes) -> None:
        self._slot_of(rec).stack_write(rec, offset, payload)

    # -- migration ------------------------------------------------------------

    def pack(self, rec: StackRecord) -> dict:
        image = self._slot_of(rec).pack(rec)
        image["technique"] = self.technique
        image["slot_index"] = rec.address_class
        return image

    def unpack(self, image: dict) -> StackRecord:
        if image.get("technique") != self.technique:
            raise MigrationError(
                f"stack image is {image.get('technique')!r}, "
                f"not {self.technique}")
        index = image["slot_index"]
        if index >= len(self.slots):
            raise MigrationError(
                f"destination has only {len(self.slots)} alias slots; "
                f"thread is pinned to slot {index}")
        inner = dict(image, technique="memory_alias")
        rec = self.slots[index].unpack(inner)
        rec.address_class = index
        return rec

    def evacuate(self, rec: StackRecord) -> None:
        self._slot_of(rec).evacuate(rec)
