"""User-level threads (Converse-style "Cth" threads, paper Section 2.3).

A :class:`UThread` is one flow of control: a body (a Python generator
function — the coarse emulation of a C stack documented in DESIGN.md), a
simulated stack managed by one of the Section 3.4 techniques, an optional
isomalloc heap, an optional private set of global variables, and a saved
register image.

Thread bodies are generator functions taking the thread as their argument
and yielding scheduler directives::

    def body(th):
        data = th.malloc(64)                  # migratable heap
        th.write_word(data, 42)
        yield "yield"                          # CthYield
        assert th.read_word(data) == 42        # still valid — even after
        yield "suspend"                        # CthSuspend until awakened
        # falling off the end is CthExit

Nested blocking calls use ``yield from`` (e.g. the AMPI layer's
``comm.recv``).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

from repro.errors import ThreadError
from repro.core.stacks import StackRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.scheduler import CthScheduler
    from repro.core.swapglobal import GlobalOffsetTable

__all__ = ["ThreadState", "UThread", "ThreadBody"]

#: Signature of a thread body.
ThreadBody = Callable[["UThread"], Generator[Any, Any, Any]]


class ThreadState(enum.Enum):
    """Lifecycle states of a user-level thread."""

    CREATED = "created"
    READY = "ready"          # on the scheduler's run queue
    RUNNING = "running"      # the processor's current flow of control
    SUSPENDED = "suspended"  # waiting for CthAwaken
    MIGRATING = "migrating"  # packed and in flight between processors
    FINISHED = "finished"


class UThread:
    """One migratable user-level thread.

    Application code should create threads through
    :meth:`repro.core.scheduler.CthScheduler.create` rather than directly.
    """

    def __init__(self, tid: tuple, body: ThreadBody,
                 scheduler: "CthScheduler", stack: StackRecord,
                 name: str = ""):
        #: Globally unique id: (birth processor, sequence number).
        self.tid = tid
        self.name = name or f"t{tid[0]}.{tid[1]}"
        self.body = body
        self.scheduler = scheduler
        self.stack = stack
        self.state = ThreadState.CREATED
        #: Private global-variable set, if privatized (isomalloc threads).
        self.got: Optional["GlobalOffsetTable"] = None
        #: Scheduling priority (smaller runs first under the priority policy).
        self.priority = 0
        self._gen: Optional[Generator] = None
        #: Value injected into the generator at the next resume
        #: (used by AMPI to deliver a received message).
        self.resume_value: Any = None
        # -- statistics ------------------------------------------------------
        self.switches = 0
        self.migrations = 0
        self.work_ns = 0.0

    # ------------------------------------------------------------------
    # memory interface for body code
    # ------------------------------------------------------------------

    @property
    def space(self):
        """The address space of the processor this thread resides on."""
        return self.scheduler.space

    def malloc(self, nbytes: int) -> int:
        """Allocate migratable heap memory (isomalloc interposition).

        Inside a thread context allocation is redirected to the thread's
        isomalloc slot, per the paper's malloc-interposition extension;
        threads whose stack technique owns no slot cannot allocate
        migratable heap.
        """
        if self.stack.slot is None:
            raise ThreadError(
                f"{self.name}: no isomalloc slot — migratable heap needs "
                f"isomalloc threads")
        return self.stack.slot.malloc(nbytes)

    def free(self, addr: int) -> None:
        """Free memory from :meth:`malloc`."""
        if self.stack.slot is None:
            raise ThreadError(f"{self.name}: no isomalloc slot")
        self.stack.slot.free(addr)

    def _in_own_stack(self, address: int) -> bool:
        return self.stack.base <= address < self.stack.top

    def read(self, address: int, length: int) -> bytes:
        """Read simulated memory as this thread (stack-aware).

        Reads of the thread's own stack work whether or not the thread is
        the active one on a single-address stack technique.
        """
        if self._in_own_stack(address):
            return self.scheduler.stack_manager.stack_read(
                self.stack, address - self.stack.base, length)
        return self.space.read(address, length)

    def write(self, address: int, payload: bytes) -> None:
        """Write simulated memory as this thread (stack-aware)."""
        if self._in_own_stack(address):
            self.scheduler.stack_manager.stack_write(
                self.stack, address - self.stack.base, payload)
        else:
            self.space.write(address, payload)

    def read_word(self, address: int) -> int:
        """Read one machine word."""
        return int.from_bytes(self.read(address, self.space.layout.word_bytes),
                              "little")

    def write_word(self, address: int, value: int) -> None:
        """Write one machine word."""
        self.write(address,
                   value.to_bytes(self.space.layout.word_bytes, "little"))

    def alloca(self, nbytes: int) -> int:
        """Consume stack space (models alloca()); returns the block address.

        This is the knob the Figure 9 experiment turns: live stack bytes
        are what stack-copying threads pay to switch.
        """
        self.stack.consume(nbytes)
        return self.stack.top - self.stack.used_bytes

    def charge(self, ns: float) -> None:
        """Account ``ns`` of computation to this thread and its processor."""
        self.work_ns += ns
        self.scheduler.processor.charge(ns)

    # ------------------------------------------------------------------
    # globals
    # ------------------------------------------------------------------

    def global_read_int(self, name: str) -> int:
        """Read a global variable as this thread sees it."""
        self.scheduler.ensure_got(self)
        return self.scheduler.globals_registry.read_int(name)

    def global_write_int(self, name: str, value: int) -> None:
        """Write a global variable as this thread sees it."""
        self.scheduler.ensure_got(self)
        self.scheduler.globals_registry.write_int(name, value)

    # ------------------------------------------------------------------
    # generator protocol (driven by the scheduler)
    # ------------------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._gen is None:
            self._gen = self.body(self)

    def step(self) -> Any:
        """Advance the body to its next directive.

        Returns the yielded directive, or ``"exit"`` when the body
        finishes.  Only the scheduler calls this.
        """
        self._ensure_started()
        assert self._gen is not None
        try:
            value, self.resume_value = self.resume_value, None
            if hasattr(self._gen, "send"):
                return self._gen.send(value)
            # A plain iterator body (no send protocol): just advance it.
            return next(self._gen)
        except StopIteration:
            return "exit"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<UThread {self.name} {self.state.value}>"
