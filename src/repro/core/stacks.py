"""The three migratable-thread stack techniques (paper Section 3.4).

All three guarantee the property migration needs: *a thread's stack data
occupies the same virtual addresses on every processor*, so the pointers a
stack inevitably contains (return addresses, frame pointers, pointer
variables — many pointing into the stack itself) stay valid without any
rewriting.

=====================  ======================================================
Technique              How the address is kept constant
=====================  ======================================================
Stack copying          One system-wide stack address; each switch copies the
                       outgoing thread's live stack out to backing store and
                       the incoming thread's back in.  Switch cost grows
                       linearly with live stack bytes (Figure 9); only one
                       thread can be active per address space.
Isomalloc              Every thread has globally unique addresses from the
                       isomalloc region, so nothing moves at a switch —
                       switches are pure register swaps, flat in stack size
                       and the fastest curve in Figure 9.  Costs virtual
                       address space on every processor.
Memory aliasing        One stack address like stack copying, but the switch
                       *remaps* the incoming thread's physical pages under
                       the common address instead of copying — an mmap-class
                       operation, ~µs flat cost growing only with page count
                       (Figure 9, and this paper's new contribution).
=====================  ======================================================

Each manager implements the same interface so the scheduler, the migrator,
and the Figure 9 benchmark treat techniques uniformly.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import MigrationError, ThreadError
from repro.core.isomalloc import IsomallocArena, IsomallocSlot
from repro.sim.platform import PlatformProfile
from repro.vm.addrspace import AddressSpace, Mapping
from repro.vm.physical import Frame

__all__ = ["StackRecord", "StackManager", "StackCopyStacks",
           "IsomallocStacks", "MemoryAliasStacks"]


@dataclass
class StackRecord:
    """Per-thread stack bookkeeping handed out by a :class:`StackManager`.

    ``base``/``top`` are the addresses *the thread sees*; ``used_bytes``
    models how much of the stack is live (the alloca() knob of the paper's
    Figure 9 experiment) and is what stack copying pays to move.
    """

    tid: int
    base: int
    size: int
    used_bytes: int
    #: Extra live bytes beyond ``used_bytes`` — the register image the
    #: scheduler pushed below the thread's data while it is suspended.
    extra_live: int = 0
    #: Threads sharing an address class share a stack address and cannot
    #: be active simultaneously (0 for single-address techniques; unique
    #: per thread for isomalloc; the slot index for k-slot aliasing).
    address_class: int = 0
    #: Technique-private fields.
    backing: Optional[Mapping] = None            # stack copy: backing store
    slot: Optional[IsomallocSlot] = None         # isomalloc: the whole slot
    frames: Optional[List[Frame]] = None         # aliasing: private frames
    resident: bool = True

    @property
    def top(self) -> int:
        """Initial stack pointer (one past the highest stack byte)."""
        return self.base + self.size

    @property
    def live_bytes(self) -> int:
        """Bytes of meaningful stack data — what stack copying must move.

        On a real machine everything below the stack pointer is garbage;
        only ``[top - live_bytes, top)`` is preserved across a stack-copy
        deactivation, exactly as on hardware.
        """
        return min(self.size, self.used_bytes + self.extra_live)

    def consume(self, nbytes: int) -> None:
        """Model alloca(): mark ``nbytes`` more of the stack as live."""
        if self.used_bytes + nbytes > self.size:
            raise ThreadError(
                f"stack overflow: {self.used_bytes}+{nbytes} > {self.size}")
        self.used_bytes += nbytes


class StackManager(ABC):
    """Interface shared by the three stack techniques."""

    #: Short name used in reports and benchmark output.
    technique: str = "?"
    #: Whether several threads of this manager can be active at once
    #: (isomalloc yes; the single-address techniques no — the paper's
    #: SMP limitation of stack copying and aliasing).
    concurrent_active: bool = False

    def __init__(self, space: AddressSpace, profile: PlatformProfile,
                 stack_bytes: int):
        self.space = space
        self.profile = profile
        self.stack_bytes = space.layout.page_align_up(stack_bytes)
        self.switch_in_count = 0
        self.switch_out_count = 0
        self._next_tid = 0

    # -- lifecycle ------------------------------------------------------------

    @abstractmethod
    def create_stack(self) -> StackRecord:
        """Allocate a new thread stack; returns its record."""

    @abstractmethod
    def destroy_stack(self, rec: StackRecord) -> None:
        """Release a thread stack."""

    # -- context switching -------------------------------------------------

    @abstractmethod
    def switch_in(self, rec: StackRecord) -> float:
        """Make ``rec`` the active stack; returns the modeled cost in ns."""

    @abstractmethod
    def switch_out(self, rec: StackRecord) -> float:
        """Deactivate ``rec``; returns the modeled cost in ns."""

    # -- migration -----------------------------------------------------------

    @abstractmethod
    def pack(self, rec: StackRecord) -> dict:
        """Produce a migration image for the stack (and slot, if owned)."""

    @abstractmethod
    def unpack(self, image: dict) -> StackRecord:
        """Rebuild a migrated stack on *this* manager's processor."""

    @abstractmethod
    def evacuate(self, rec: StackRecord) -> None:
        """Release local resources after :meth:`pack` (migrate-out)."""

    # -- shared helpers --------------------------------------------------------

    def _tid(self) -> int:
        self._next_tid += 1
        return self._next_tid

    def stack_read(self, rec: StackRecord, offset: int, length: int) -> bytes:
        """Read the *active or resident* stack contents of a thread."""
        return self.space.read(rec.base + offset, length)

    def stack_write(self, rec: StackRecord, offset: int, payload: bytes) -> None:
        """Write into a thread's stack at ``offset`` from the base."""
        self.space.write(rec.base + offset, payload)


class StackCopyStacks(StackManager):
    """Naive migratable threads: one stack address, copy in and out (§3.4.1).

    All threads on all processors execute from one system-wide stack
    address, so migration is just shipping the saved copy.  The technique
    requires the platform to place that common address identically on every
    node — impossible under stack-address randomization, which is why the
    constructor checks ``profile.fixed_stack_base``.
    """

    technique = "stack_copy"
    concurrent_active = False

    def __init__(self, space: AddressSpace, profile: PlatformProfile,
                 stack_bytes: int = 64 * 1024):
        super().__init__(space, profile, stack_bytes)
        if not profile.fixed_stack_base:
            raise ThreadError(
                f"{profile.name}: stack-copy threads need a fixed system "
                f"stack base (stack-smashing protection randomizes it)")
        # The common execution address: deterministic, so every processor
        # sharing the layout derives the same one.
        stack_region = space.layout.regions["stack"]
        self.common = space.mmap(self.stack_bytes, addr=stack_region.start,
                                 tag="common-stack")
        self.active: Optional[StackRecord] = None

    def create_stack(self) -> StackRecord:
        backing = self.space.mmap(self.stack_bytes, region="heap",
                                  tag="stackcopy-backing")
        return StackRecord(tid=self._tid(), base=self.common.start,
                           size=self.stack_bytes, used_bytes=0,
                           backing=backing)

    def destroy_stack(self, rec: StackRecord) -> None:
        if self.active is rec:
            self.active = None
        if rec.backing is not None:
            self.space.munmap(rec.backing)
            rec.backing = None

    def switch_in(self, rec: StackRecord) -> float:
        if self.active is rec:
            return 0.0
        if self.active is not None:
            raise ThreadError("stack-copy: another thread is still active "
                              "(only one can run per address space)")
        assert rec.backing is not None
        cost = 0.0
        live = rec.live_bytes
        if live:
            # Live stack data sits at the top of the stack.
            off = self.stack_bytes - live
            data = self.space.read(rec.backing.start + off, live)
            self.space.write(self.common.start + off, data)
            self.space.bytes_copied += live
            cost += self.profile.mem.memcpy_cost(live)
        self.active = rec
        self.switch_in_count += 1
        return cost

    def switch_out(self, rec: StackRecord) -> float:
        if self.active is not rec:
            raise ThreadError("stack-copy: switching out a non-active thread")
        assert rec.backing is not None
        cost = 0.0
        live = rec.live_bytes
        if live:
            off = self.stack_bytes - live
            data = self.space.read(self.common.start + off, live)
            self.space.write(rec.backing.start + off, data)
            self.space.bytes_copied += live
            cost += self.profile.mem.memcpy_cost(live)
        self.active = None
        self.switch_out_count += 1
        return cost

    def stack_read(self, rec: StackRecord, offset: int, length: int) -> bytes:
        """Read a thread's stack — from the common address if active,
        otherwise from its backing store."""
        if self.active is rec:
            return self.space.read(self.common.start + offset, length)
        assert rec.backing is not None
        return self.space.read(rec.backing.start + offset, length)

    def stack_write(self, rec: StackRecord, offset: int, payload: bytes) -> None:
        """Write a thread's stack wherever it currently lives."""
        if self.active is rec:
            self.space.write(self.common.start + offset, payload)
        else:
            assert rec.backing is not None
            self.space.write(rec.backing.start + offset, payload)

    def pack(self, rec: StackRecord) -> dict:
        if self.active is rec:
            raise MigrationError("cannot migrate the active stack-copy thread")
        assert rec.backing is not None
        return {
            "technique": self.technique,
            "size": rec.size,
            "used_bytes": rec.used_bytes,
            "extra_live": rec.extra_live,
            "contents": self.space.read(rec.backing.start, rec.size),
        }

    def unpack(self, image: dict) -> StackRecord:
        if image["technique"] != self.technique:
            raise MigrationError(
                f"stack image is {image['technique']}, not {self.technique}")
        if image["size"] != self.stack_bytes:
            raise MigrationError("stack size mismatch across processors")
        rec = self.create_stack()
        rec.used_bytes = image["used_bytes"]
        rec.extra_live = image.get("extra_live", 0)
        assert rec.backing is not None
        self.space.write(rec.backing.start, image["contents"])
        return rec

    def evacuate(self, rec: StackRecord) -> None:
        self.destroy_stack(rec)


class IsomallocStacks(StackManager):
    """Isomalloc threads: globally unique stack and heap addresses (§3.4.2)."""

    technique = "isomalloc"
    concurrent_active = True

    def __init__(self, space: AddressSpace, profile: PlatformProfile,
                 arena: IsomallocArena, pe: int,
                 stack_bytes: int = 64 * 1024):
        super().__init__(space, profile, stack_bytes)
        if not profile.has_mmap:
            raise ThreadError(
                f"{profile.name}: isomalloc needs mmap (Table 1: 'No' on "
                f"this machine)")
        self.arena = arena
        self.pe = pe

    def create_stack(self) -> StackRecord:
        slot = IsomallocSlot(self.arena, self.space, self.pe,
                             self.stack_bytes)
        tid = self._tid()
        return StackRecord(tid=tid, base=slot.stack_base,
                           size=self.stack_bytes, used_bytes=0, slot=slot,
                           address_class=tid)

    def destroy_stack(self, rec: StackRecord) -> None:
        if rec.slot is not None:
            rec.slot.destroy()
            rec.slot = None

    def switch_in(self, rec: StackRecord) -> float:
        # Nothing moves: the thread's addresses are exclusively its own.
        self.switch_in_count += 1
        return 0.0

    def switch_out(self, rec: StackRecord) -> float:
        self.switch_out_count += 1
        return 0.0

    def pack(self, rec: StackRecord) -> dict:
        assert rec.slot is not None
        return {
            "technique": self.technique,
            "size": rec.size,
            "used_bytes": rec.used_bytes,
            "extra_live": rec.extra_live,
            "slot": rec.slot.pack(),
        }

    def unpack(self, image: dict) -> StackRecord:
        if image["technique"] != self.technique:
            raise MigrationError(
                f"stack image is {image['technique']}, not {self.technique}")
        slot = IsomallocSlot.adopt(self.arena, self.space, self.pe,
                                   image["slot"])
        tid = self._tid()
        return StackRecord(tid=tid, base=slot.stack_base,
                           size=image["size"],
                           used_bytes=image["used_bytes"],
                           extra_live=image.get("extra_live", 0), slot=slot,
                           address_class=tid)

    def evacuate(self, rec: StackRecord) -> None:
        assert rec.slot is not None
        rec.slot.evacuate()
        rec.slot = None


class MemoryAliasStacks(StackManager):
    """Memory-aliasing stacks: remap instead of copy (§3.4.3, Figure 3).

    Each thread's stack data lives in its own physical frames.  All threads
    execute from the common stack address; switching a thread in re-maps its
    frames under that address.  One mmap-class call per switch — slower than
    isomalloc, far faster than copying, and only one stack's worth of
    virtual address space per processor.
    """

    technique = "memory_alias"
    concurrent_active = False

    def __init__(self, space: AddressSpace, profile: PlatformProfile,
                 stack_bytes: int = 64 * 1024,
                 base_addr: Optional[int] = None):
        super().__init__(space, profile, stack_bytes)
        if not (profile.has_mmap or profile.mmap_equivalent
                or profile.microkernel_remap_extension):
            raise ThreadError(
                f"{profile.name}: memory aliasing needs mmap, an mmap "
                f"equivalent, or a microkernel remap extension")
        stack_region = space.layout.regions["stack"]
        if base_addr is None:
            base_addr = stack_region.start
        self.common = space.mmap(self.stack_bytes, addr=base_addr,
                                 tag="alias-stack")
        # The common mapping's own initial frames back "no thread"; they are
        # parked here when a real thread's frames are mapped in.
        self._parked: Optional[List[Frame]] = None
        self.active: Optional[StackRecord] = None
        self.npages = self.stack_bytes // space.layout.page_size

    def create_stack(self) -> StackRecord:
        frames = self.space.physical.allocate_frames(self.npages)
        return StackRecord(tid=self._tid(), base=self.common.start,
                           size=self.stack_bytes, used_bytes=0,
                           frames=frames)

    def destroy_stack(self, rec: StackRecord) -> None:
        if self.active is rec:
            self._switch_out_frames(rec)
        if rec.frames is not None:
            self.space.physical.free_frames(rec.frames)
            rec.frames = None

    def switch_in(self, rec: StackRecord) -> float:
        if self.active is rec:
            return 0.0
        if self.active is not None:
            raise ThreadError("memory-alias: another thread is still active")
        assert rec.frames is not None
        displaced = self.space.remap_frames(self.common, rec.frames)
        if self._parked is None:
            self._parked = displaced
        rec.frames = None           # frames are now under the common mapping
        self.active = rec
        self.switch_in_count += 1
        return self.profile.mem.remap_cost(self.npages)

    def switch_out(self, rec: StackRecord) -> float:
        if self.active is not rec:
            raise ThreadError("memory-alias: switching out a non-active thread")
        self._switch_out_frames(rec)
        self.switch_out_count += 1
        # The switch-out remap is folded into the next switch-in (one mmap
        # call swaps both), so only a bookkeeping cost is charged here.
        return 0.0

    def _switch_out_frames(self, rec: StackRecord) -> None:
        assert self._parked is not None
        rec.frames = self.space.remap_frames(self.common, self._parked)
        self._parked = None
        self.active = None

    def stack_read(self, rec: StackRecord, offset: int, length: int) -> bytes:
        """Read a thread's stack — via the common mapping if active,
        directly from its private frames otherwise."""
        if self.active is rec:
            return self.space.read(self.common.start + offset, length)
        assert rec.frames is not None
        return self._frames_rw(rec.frames, offset, length, None)

    def stack_write(self, rec: StackRecord, offset: int, payload: bytes) -> None:
        """Write a thread's stack wherever its frames currently are."""
        if self.active is rec:
            self.space.write(self.common.start + offset, payload)
        else:
            assert rec.frames is not None
            self._frames_rw(rec.frames, offset, len(payload), payload)

    def _frames_rw(self, frames: List[Frame], offset: int, length: int,
                   payload: Optional[bytes]) -> bytes:
        page = self.space.layout.page_size
        out = bytearray()
        cursor = offset
        remaining = length
        written = 0
        while remaining > 0:
            idx, off = divmod(cursor, page)
            chunk = min(remaining, page - off)
            if payload is None:
                out += frames[idx].read(off, chunk)
            else:
                frames[idx].write(off, payload[written:written + chunk])
            cursor += chunk
            remaining -= chunk
            written += chunk
        return bytes(out)

    def pack(self, rec: StackRecord) -> dict:
        if self.active is rec:
            raise MigrationError("cannot migrate the active aliased thread")
        assert rec.frames is not None
        page = self.space.layout.page_size
        contents = b"".join(f.read(0, page) for f in rec.frames)
        return {
            "technique": self.technique,
            "size": rec.size,
            "used_bytes": rec.used_bytes,
            "contents": contents,
        }

    def unpack(self, image: dict) -> StackRecord:
        if image["technique"] != self.technique:
            raise MigrationError(
                f"stack image is {image['technique']}, not {self.technique}")
        if image["size"] != self.stack_bytes:
            raise MigrationError("stack size mismatch across processors")
        rec = self.create_stack()
        rec.used_bytes = image["used_bytes"]
        rec.extra_live = image.get("extra_live", 0)
        page = self.space.layout.page_size
        assert rec.frames is not None
        for i, frame in enumerate(rec.frames):
            frame.write(0, image["contents"][i * page:(i + 1) * page])
        return rec

    def evacuate(self, rec: StackRecord) -> None:
        self.destroy_stack(rec)
