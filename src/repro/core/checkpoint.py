"""Checkpoint/restart and proactive evacuation via migration.

Paper Section 3: "Migration techniques can also be used to implement
checkpoint/restart for fault tolerance — under this model, checkpointing is
simply migration to disk or the local memory of a remote processor", and
migration "can allow all the work to be moved off a processor ... to vacate
a node that is expected to fail or be shut down".

Both are implemented here on top of the thread migrator:

* :class:`Checkpointer` packs a thread's full migration image (stack,
  isomalloc heap, allocator metadata, GOT, saved registers) into **real
  bytes** (via :func:`repro.core.pup.pack_value`) on a simulated disk with
  a write-bandwidth cost model, and can rebuild the thread from those
  bytes on any processor.
* :meth:`Checkpointer.evacuate` drains every migratable thread off a
  processor (round-robin over the survivors) — proactive fault tolerance.

Emulation caveat (see DESIGN.md): the Python generator driving a thread's
body is process-local and cannot be serialized, so a restore is only valid
while the thread has not been scheduled since the checkpoint — the
generator must still *be* at the checkpointed state.  :meth:`restore`
enforces this.  Everything the paper says must persist (the simulated
memory image) genuinely round-trips through bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import (CheckpointError, MigrationAborted, MigrationError,
                          PupError)
from repro.core.migration import ThreadMigrator
from repro.core.pup import pack_value, pup_seal, pup_unseal, unpack_value
from repro.core.thread import ThreadState, UThread

__all__ = ["DiskModel", "CheckpointRecord", "Checkpointer"]


@dataclass(frozen=True)
class DiskModel:
    """Cost model for the simulated checkpoint device."""

    write_bytes_per_ns: float = 0.1       # ~100 MB/s (2006 local disk)
    read_bytes_per_ns: float = 0.15
    seek_ns: float = 8_000_000.0          # 8 ms seek + sync

    def write_ns(self, nbytes: int) -> float:
        """Time to persist ``nbytes``."""
        return self.seek_ns + nbytes / self.write_bytes_per_ns

    def read_ns(self, nbytes: int) -> float:
        """Time to load ``nbytes``."""
        return self.seek_ns + nbytes / self.read_bytes_per_ns


@dataclass
class CheckpointRecord:
    """One thread checkpoint: real bytes plus the process-local handles."""

    key: str
    blob: bytes
    tid: tuple
    name: str
    switches_at_checkpoint: int
    #: Process-local continuation handle (not serializable; DESIGN.md).
    thread_obj: UThread = field(repr=False, default=None)

    @property
    def nbytes(self) -> int:
        """Size of the serialized image on the simulated disk."""
        return len(self.blob)


class Checkpointer:
    """Checkpoint, restore, and evacuate migratable threads."""

    def __init__(self, migrator: ThreadMigrator,
                 disk: Optional[DiskModel] = None):
        self.migrator = migrator
        self.disk = disk or DiskModel()
        self._store: Dict[str, CheckpointRecord] = {}
        self.checkpoints_taken = 0
        self.restores_done = 0
        self.bytes_written = 0
        #: Threads :meth:`evacuate` had to leave in place because every
        #: migration attempt aborted.
        self.evacuations_skipped = 0

    # ------------------------------------------------------------------

    def checkpoint(self, thread: UThread, key: Optional[str] = None) -> str:
        """Persist a non-running thread's state to the simulated disk.

        Non-destructive: the thread keeps running afterwards.  Returns the
        checkpoint key.
        """
        if thread.state not in (ThreadState.READY, ThreadState.SUSPENDED):
            raise MigrationError(
                f"cannot checkpoint {thread.name} in state "
                f"{thread.state.value}")
        sched = thread.scheduler
        image = {
            "tid": tuple(thread.tid),
            "name": thread.name,
            "stack": sched.stack_manager.pack(thread.stack),
            "saved_sp": sched.saved_sp(thread),
            "got_image": list(thread.got.image) if thread.got else None,
            "got_storage": (list(thread.got.storage_addrs)
                            if thread.got else None),
        }
        # The on-disk image is sealed (length + CRC32) so that corruption
        # on the simulated disk is a loud CheckpointError at restore, never
        # a silently wrong memory image.
        blob = pup_seal(pack_value(image))
        key = key or f"ckpt-{thread.name}-{self.checkpoints_taken}"
        # The kernel's "checkpoint.write" filter channel may replace the
        # blob (chaos: transient CheckpointError or a corrupted image that
        # the seal catches at restore).
        blob = self.migrator.cluster.queue.hooks.filter(
            "checkpoint.write", blob, key=key)
        self._store[key] = CheckpointRecord(
            key=key, blob=blob, tid=thread.tid, name=thread.name,
            switches_at_checkpoint=thread.switches, thread_obj=thread)
        sched.processor.charge(self.disk.write_ns(len(blob)))
        self.checkpoints_taken += 1
        self.bytes_written += len(blob)
        return key

    def records(self) -> List[CheckpointRecord]:
        """All stored checkpoint records (for inspection/integrity audits)."""
        return list(self._store.values())

    def stored(self, key: str) -> CheckpointRecord:
        """Look up a checkpoint record."""
        try:
            return self._store[key]
        except KeyError:
            raise MigrationError(f"no checkpoint {key!r}") from None

    def restore(self, key: str, dst_pe: int) -> UThread:
        """Rebuild a checkpointed thread on processor ``dst_pe``.

        The original thread's resources are assumed lost (fail-stop): the
        image is deserialized from bytes, the stack/heap are rebuilt at
        their original virtual addresses, and the thread resumes suspended
        on the destination scheduler.

        Raises
        ------
        MigrationError
            If the thread was scheduled after the checkpoint (its
            generator has advanced past the saved memory image — the
            documented emulation limit), or if the destination cannot
            host the image.
        """
        record = self.stored(key)
        thread = record.thread_obj
        if thread.switches != record.switches_at_checkpoint:
            raise MigrationError(
                f"cannot restore {record.name}: thread ran "
                f"{thread.switches - record.switches_at_checkpoint} more "
                f"slices after the checkpoint (generator state is "
                f"process-local; see DESIGN.md)")
        try:
            image = unpack_value(pup_unseal(record.blob))
        except PupError as e:
            raise CheckpointError(
                f"checkpoint {key!r} failed its integrity check: {e}") from e
        dst_sched = self.migrator.schedulers[dst_pe]
        dst_sched.processor.charge(self.disk.read_ns(len(record.blob)))
        rec = dst_sched.stack_manager.unpack(image["stack"])
        thread.stack = rec
        if image["got_image"] is not None and thread.got is not None:
            thread.got.image = list(image["got_image"])
            thread.got.storage_addrs = list(image["got_storage"] or [])
        dst_sched.adopt(thread, image["saved_sp"])
        # Restores come back suspended; the caller decides when to resume.
        dst_sched.ready.remove(thread)
        thread.state = ThreadState.SUSPENDED
        self.restores_done += 1
        return thread

    # ------------------------------------------------------------------

    def evacuate(self, pe: int,
                 targets: Optional[Sequence[int]] = None) -> int:
        """Migrate every thread off processor ``pe`` (proactive FT).

        Threads are spread round-robin over ``targets`` (default: every
        other live processor).  Returns the number of threads moved.  The
        caller then runs the cluster to complete delivery.

        A migration that aborts (fault injection, failed destination) is
        retried once on the next target; a thread whose retries all abort
        stays in place and is counted in :attr:`evacuations_skipped` — a
        partial evacuation is still an evacuation, never a lost thread.
        """
        scheds = self.migrator.schedulers
        if targets is None:
            targets = [p for p in range(len(scheds))
                       if p != pe and not self.migrator.cluster[p].failed]
        if not targets or pe in targets:
            raise MigrationError(f"bad evacuation targets {targets}")
        sched = scheds[pe]
        threads: List[UThread] = list(sched.threads.values())
        moved = 0
        for i, thread in enumerate(threads):
            if thread.state not in (ThreadState.READY, ThreadState.SUSPENDED):
                continue
            for attempt in range(2):
                dst = targets[(i + attempt) % len(targets)]
                try:
                    self.migrator.migrate(thread, dst)
                except MigrationAborted:
                    continue
                moved += 1
                break
            else:
                self.evacuations_skipped += 1
        return moved
