"""Isomalloc: globally-unique virtual addresses for migratable threads.

Section 3.4.2 of the paper (after PM2 [4]): the unused virtual address
space between heap and stack — the *isomalloc region* — is divided at
startup into per-processor ranges; a processor grants each local thread a
globally unique *slot* of virtual addresses from its own range.  A thread's
stack and heap live inside its slot, so after migrating to any other
processor the thread's data occupies the very same virtual addresses and
"pointers within and between the thread's stack and heap need not be
modified".

Physical memory is only assigned to *local* threads' pages; remote slots
are claimed "only in principle".  The price is virtual-address-space
consumption on every processor proportional to the total number of threads,
which exhausts 32-bit machines quickly — reproduce with
:meth:`IsomallocArena.capacity_check` and the Figure 9 / ablation benches.

This module also implements the paper's extension over PM2: *malloc
interposition*.  :class:`IsomallocHeap` provides ``malloc``/``free`` whose
block headers live in simulated memory, and :class:`repro.core.thread.UThread`
routes its allocation calls here when running in a thread context, so
"unmodified applications" get migratable heap data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (MapError, MigrationError, OutOfVirtualAddressSpace,
                          ThreadError)
from repro.vm.addrspace import AddressSpace, Mapping
from repro.vm.layout import AddressSpaceLayout

__all__ = ["IsomallocArena", "IsomallocSlot", "IsomallocHeap"]

#: malloc block header: 8-byte magic + 8-byte size, stored in simulated
#: memory immediately before the user pointer.
_HEADER_BYTES = 16
_MAGIC = 0x150_A110C  # "ISO ALLOC"


class IsomallocArena:
    """Cluster-wide partition of the isomalloc region (paper Figure 2).

    The arena is the startup-time agreement among all processors: processor
    *i* owns ``[iso.start + i*range, iso.start + (i+1)*range)`` and hands
    out fixed-size slots from it.  Because the partition is global, slot
    addresses are unique across the entire machine without communication.

    Parameters
    ----------
    layout:
        The (shared) address-space layout; all processors must agree on it.
    num_pes:
        Number of processors in the partition.
    slot_bytes:
        Virtual size of each thread slot (stack + heap), default 1 MiB —
        the paper's example figure.
    """

    def __init__(self, layout: AddressSpaceLayout, num_pes: int,
                 slot_bytes: int = 1024 * 1024):
        if num_pes <= 0:
            raise ThreadError("arena needs at least one processor")
        iso = layout.regions["iso"]
        slot_bytes = layout.page_align_up(slot_bytes)
        page = layout.page_size
        range_bytes = (iso.size // num_pes) // page * page
        if range_bytes < slot_bytes:
            raise OutOfVirtualAddressSpace(
                f"isomalloc region of {iso.size} bytes cannot give "
                f"{num_pes} processors even one {slot_bytes}-byte slot each")
        self.layout = layout
        self.num_pes = num_pes
        self.slot_bytes = slot_bytes
        self.range_bytes = range_bytes
        self.slots_per_pe = range_bytes // slot_bytes
        self._next_index: List[int] = [0] * num_pes
        self._free_indices: List[List[int]] = [[] for _ in range(num_pes)]
        self._owner: Dict[int, int] = {}  # slot base -> allocating pe

    def pe_range(self, pe: int) -> Tuple[int, int]:
        """(start, size) of processor ``pe``'s share of the region."""
        self._check_pe(pe)
        iso = self.layout.regions["iso"]
        return iso.start + pe * self.range_bytes, self.range_bytes

    def allocate_slot(self, pe: int) -> int:
        """Grant a globally unique slot base address from ``pe``'s range."""
        self._check_pe(pe)
        if self._free_indices[pe]:
            index = self._free_indices[pe].pop()
        else:
            index = self._next_index[pe]
            if index >= self.slots_per_pe:
                raise OutOfVirtualAddressSpace(
                    f"processor {pe} exhausted its isomalloc range "
                    f"({self.slots_per_pe} slots of {self.slot_bytes} bytes)")
            self._next_index[pe] += 1
        start, _ = self.pe_range(pe)
        base = start + index * self.slot_bytes
        self._owner[base] = pe
        return base

    def release_slot(self, base: int) -> None:
        """Return a slot to its birth processor's free pool."""
        pe = self._owner.pop(base, None)
        if pe is None:
            raise ThreadError(f"slot base {base:#x} was not allocated")
        start, _ = self.pe_range(pe)
        self._free_indices[pe].append((base - start) // self.slot_bytes)

    def slots_in_use(self) -> int:
        """Total slots currently allocated across the machine."""
        return len(self._owner)

    def capacity_total(self) -> int:
        """Maximum simultaneous threads the partition can address."""
        return self.slots_per_pe * self.num_pes

    def capacity_check(self, threads_per_pe: int) -> bool:
        """Would ``threads_per_pe`` threads on every PE fit? (paper's n·s·p)"""
        return threads_per_pe <= self.slots_per_pe

    def _check_pe(self, pe: int) -> None:
        if not 0 <= pe < self.num_pes:
            raise ThreadError(f"bad processor {pe} (arena has {self.num_pes})")


@dataclass
class _HeapExtent:
    """Python-side record of one mmap'ed chunk of a slot's heap."""

    mapping: Mapping


class IsomallocHeap:
    """A first-fit malloc/free allocator inside one slot's heap area.

    Block headers (magic + size) are stored in *simulated memory* before
    each user block: ``free`` reads the header back through the address
    space, so heap discipline errors (bad pointer, double free after
    reuse) surface just as they would natively.  The free list itself is
    Python-side metadata carried in the thread's migration image; its
    addresses stay valid after migration precisely because of isomalloc.
    """

    def __init__(self, space: AddressSpace, base: int, limit: int,
                 page_size: int):
        self.space = space
        self.base = base          # lowest heap address in the slot
        self.limit = limit        # one past the highest usable heap address
        self.page_size = page_size
        self.brk = base           # top of the mapped (resident) heap
        self._free: List[Tuple[int, int]] = []   # (addr, size) of free blocks
        self.allocated_bytes = 0
        self.live_blocks = 0
        self._extents: List[_HeapExtent] = []

    # -- allocation ---------------------------------------------------------

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` of migratable heap; returns the user address."""
        if nbytes <= 0:
            raise ThreadError(f"malloc of non-positive size {nbytes}")
        need = _HEADER_BYTES + self._round(nbytes)
        addr = self._take_free(need)
        if addr is None:
            addr = self._extend(need)
        self.space.write_word(addr, _MAGIC)
        self.space.write_word(addr + self.space.layout.word_bytes,
                              need - _HEADER_BYTES)
        self.allocated_bytes += need - _HEADER_BYTES
        self.live_blocks += 1
        return addr + _HEADER_BYTES

    def free(self, user_addr: int) -> None:
        """Free a block previously returned by :meth:`malloc`."""
        addr = user_addr - _HEADER_BYTES
        word = self.space.layout.word_bytes
        if not (self.base <= addr < self.brk):
            raise ThreadError(f"free of {user_addr:#x} outside this heap")
        if self.space.read_word(addr) != _MAGIC:
            raise ThreadError(f"free of {user_addr:#x}: bad block header")
        size = self.space.read_word(addr + word)
        self.space.write_word(addr, 0)  # poison the magic against double free
        self._free.append((addr, _HEADER_BYTES + size))
        self.allocated_bytes -= size
        self.live_blocks -= 1

    def block_size(self, user_addr: int) -> int:
        """Size of a live block (reads the in-memory header)."""
        addr = user_addr - _HEADER_BYTES
        if self.space.read_word(addr) != _MAGIC:
            raise ThreadError(f"{user_addr:#x} is not a live block")
        return self.space.read_word(addr + self.space.layout.word_bytes)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _round(n: int) -> int:
        return (n + 15) // 16 * 16

    def _take_free(self, need: int) -> Optional[int]:
        for i, (addr, size) in enumerate(self._free):
            if size >= need:
                if size - need >= _HEADER_BYTES + 16:
                    self._free[i] = (addr + need, size - need)
                else:
                    # Absorb the fragment; header records the true size.
                    need = size
                    del self._free[i]
                return addr
        return None

    def _extend(self, need: int) -> int:
        new_brk = self.brk + need
        if new_brk > self.limit:
            raise OutOfVirtualAddressSpace(
                f"slot heap exhausted: need {need} bytes past brk "
                f"{self.brk:#x}, limit {self.limit:#x}")
        mapped_to = self._mapped_top()
        if new_brk > mapped_to:
            grow = self.space.layout.page_align_up(new_brk - mapped_to)
            m = self.space.mmap(grow, addr=mapped_to, tag="iso-heap")
            self._extents.append(_HeapExtent(m))
        addr = self.brk
        self.brk = new_brk
        return addr

    def _mapped_top(self) -> int:
        if not self._extents:
            return self.base
        return max(e.mapping.end for e in self._extents)

    # -- migration support -----------------------------------------------------

    def pack_state(self) -> dict:
        """Metadata needed to rebuild the allocator on another processor."""
        return {
            "brk": self.brk,
            "free": list(self._free),
            "allocated_bytes": self.allocated_bytes,
            "live_blocks": self.live_blocks,
        }

    def heap_bytes(self) -> bytes:
        """The resident heap contents ``[base, brk)`` for shipping."""
        if self.brk == self.base:
            return b""
        return self.space.read(self.base, self.brk - self.base)

    @classmethod
    def rebuild(cls, space: AddressSpace, base: int, limit: int,
                page_size: int, state: dict, contents: bytes) -> "IsomallocHeap":
        """Reconstruct a heap at the *same addresses* on a new processor."""
        heap = cls(space, base, limit, page_size)
        if contents:
            grow = space.layout.page_align_up(len(contents))
            if base + grow > limit:
                raise MigrationError("migrated heap exceeds slot limit")
            m = space.mmap(grow, addr=base, tag="iso-heap")
            heap._extents.append(_HeapExtent(m))
            space.write(base, contents)
        heap.brk = state["brk"]
        heap._free = [tuple(t) for t in state["free"]]
        heap.allocated_bytes = state["allocated_bytes"]
        heap.live_blocks = state["live_blocks"]
        return heap

    def unmap_all(self) -> None:
        """Release every heap extent (thread exit or migrate-out)."""
        for e in self._extents:
            self.space.munmap(e.mapping)
        self._extents.clear()


class IsomallocSlot:
    """One thread's slot: stack at the top, heap growing from the bottom.

    ::

        base                                    base+slot_bytes
        |  heap -> ...............  <- guard ->  |  stack  |
    """

    def __init__(self, arena: IsomallocArena, space: AddressSpace, pe: int,
                 stack_bytes: int):
        stack_bytes = arena.layout.page_align_up(stack_bytes)
        if stack_bytes + arena.layout.page_size * 2 > arena.slot_bytes:
            raise ThreadError(
                f"stack of {stack_bytes} bytes does not fit a "
                f"{arena.slot_bytes}-byte slot")
        self.arena = arena
        self.space = space
        self.pe = pe
        self.base = arena.allocate_slot(pe)
        self.stack_bytes = stack_bytes
        self.stack_base = self.base + arena.slot_bytes - stack_bytes
        self.stack_mapping: Optional[Mapping] = space.mmap(
            stack_bytes, addr=self.stack_base, tag="iso-stack")
        heap_limit = self.stack_base - arena.layout.page_size  # guard page gap
        self.heap = IsomallocHeap(space, self.base, heap_limit,
                                  arena.layout.page_size)

    @property
    def stack_top(self) -> int:
        """Highest stack address + 1 (initial stack pointer)."""
        return self.stack_base + self.stack_bytes

    def malloc(self, nbytes: int) -> int:
        """Allocate migratable heap memory inside the slot."""
        return self.heap.malloc(nbytes)

    def free(self, addr: int) -> None:
        """Free migratable heap memory inside the slot."""
        self.heap.free(addr)

    def contains(self, address: int) -> bool:
        """Whether an address belongs to this slot's range."""
        return self.base <= address < self.base + self.arena.slot_bytes

    # -- migration ----------------------------------------------------------

    def pack(self) -> dict:
        """Produce the slot's migration image (stack + heap + metadata)."""
        assert self.stack_mapping is not None
        return {
            "base": self.base,
            "stack_bytes": self.stack_bytes,
            "stack_contents": self.space.read(self.stack_base, self.stack_bytes),
            "heap_state": self.heap.pack_state(),
            "heap_contents": self.heap.heap_bytes(),
        }

    def evacuate(self) -> None:
        """Unmap everything locally after packing (migrate-out).

        The slot's virtual range remains owned cluster-wide (the arena does
        not release it), so no other thread can ever collide with these
        addresses.
        """
        if self.stack_mapping is not None:
            self.space.munmap(self.stack_mapping)
            self.stack_mapping = None
        self.heap.unmap_all()

    @classmethod
    def adopt(cls, arena: IsomallocArena, space: AddressSpace, pe: int,
              image: dict) -> "IsomallocSlot":
        """Rebuild a migrated slot at identical addresses on processor ``pe``."""
        slot = cls.__new__(cls)
        slot.arena = arena
        slot.space = space
        slot.pe = pe
        slot.base = image["base"]
        slot.stack_bytes = image["stack_bytes"]
        slot.stack_base = slot.base + arena.slot_bytes - slot.stack_bytes
        try:
            slot.stack_mapping = space.mmap(
                slot.stack_bytes, addr=slot.stack_base, tag="iso-stack")
        except MapError as e:
            raise MigrationError(
                f"slot addresses {slot.stack_base:#x} unavailable on "
                f"processor {pe}: {e}") from e
        space.write(slot.stack_base, image["stack_contents"])
        heap_limit = slot.stack_base - arena.layout.page_size
        slot.heap = IsomallocHeap.rebuild(
            space, slot.base, heap_limit, arena.layout.page_size,
            image["heap_state"], image["heap_contents"])
        return slot

    def destroy(self) -> None:
        """Release the slot entirely (thread exit)."""
        self.evacuate()
        self.arena.release_slot(self.base)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IsomallocSlot base={self.base:#x} pe={self.pe}>"
