"""Swap-global: GOT-based privatization of global variables (Section 3.1.1).

Dynamically linked ELF executables reach global variables through the Global
Offset Table — one pointer per global.  The paper's swap-global scheme gives
each user-level thread a *private copy* of the GOT (and private storage for
the globals it points to); the thread scheduler swaps the GOT at each
context switch, so unmodified code that "dereferences the GOT" transparently
sees its own thread's globals.

We reproduce the same mechanism one level up: a :class:`GlobalRegistry`
owns the canonical GOT — a real table of pointers *in simulated memory* —
and every access to a global goes through that indirection.  A
:class:`GlobalOffsetTable` is one thread's private GOT image plus private
storage (allocated from the thread's migratable heap, so it travels with
the thread); ``swap_in`` writes the image over the canonical GOT, exactly
the scheduler-side operation the paper describes.

The observable consequences the tests check:

* without privatization, two threads incrementing global ``counter``
  race — each sees the other's writes;
* with privatization, each thread sees only its own ``counter``;
* a privatized thread's globals survive migration because their storage
  lives at isomalloc addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.errors import MigrationError, ThreadError
from repro.vm.addrspace import AddressSpace, Mapping

__all__ = ["GlobalVar", "GlobalRegistry", "GlobalOffsetTable"]


@dataclass(frozen=True)
class GlobalVar:
    """One declared global variable: name, byte size, slot index."""

    name: str
    size: int
    index: int


class GlobalRegistry:
    """The program's global variables and its canonical GOT.

    Usage::

        reg = GlobalRegistry(space)
        reg.declare("counter", 8)
        reg.declare("rank", 8)
        reg.build()
        reg.write_int("counter", 42)      # via GOT indirection
    """

    def __init__(self, space: AddressSpace):
        self.space = space
        self.word = space.layout.word_bytes
        self._vars: Dict[str, GlobalVar] = {}
        self._order: List[GlobalVar] = []
        self.got_mapping: Optional[Mapping] = None
        self.master_mapping: Optional[Mapping] = None
        self._built = False
        #: Number of GOT swaps performed (scheduler statistics).
        self.swap_count = 0

    # -- declaration -------------------------------------------------------

    def declare(self, name: str, size: int) -> GlobalVar:
        """Declare a global variable before :meth:`build`."""
        if self._built:
            raise ThreadError("cannot declare globals after build()")
        if name in self._vars:
            raise ThreadError(f"global {name!r} already declared")
        if size <= 0:
            raise ThreadError(f"global {name!r} has non-positive size")
        var = GlobalVar(name, size, len(self._order))
        self._vars[name] = var
        self._order.append(var)
        return var

    def build(self) -> None:
        """Allocate the GOT and master (shared) storage in the data region."""
        if self._built:
            raise ThreadError("registry already built")
        self._built = True
        n = len(self._order)
        if n == 0:
            return
        self.got_mapping = self.space.mmap(
            max(n * self.word, 1), region="data", tag="GOT")
        total = sum(v.size for v in self._order)
        self.master_mapping = self.space.mmap(
            max(total, 1), region="data", tag="globals-master")
        addr = self.master_mapping.start
        for var in self._order:
            self.space.write_word(self._slot_addr(var.index), addr)
            addr += var.size

    # -- access through the GOT ---------------------------------------------

    def _slot_addr(self, index: int) -> int:
        assert self.got_mapping is not None
        return self.got_mapping.start + index * self.word

    def var(self, name: str) -> GlobalVar:
        """Look up a declared global."""
        try:
            return self._vars[name]
        except KeyError:
            raise ThreadError(f"unknown global {name!r}") from None

    def addr_of(self, name: str) -> int:
        """Current address of a global — read through the GOT, like code does."""
        if not self._built:
            raise ThreadError("registry not built")
        return self.space.read_word(self._slot_addr(self.var(name).index))

    def read(self, name: str) -> bytes:
        """Read a global's full value via GOT indirection."""
        var = self.var(name)
        return self.space.read(self.addr_of(name), var.size)

    def write(self, name: str, payload: bytes) -> None:
        """Write a global's value via GOT indirection."""
        var = self.var(name)
        if len(payload) > var.size:
            raise ThreadError(
                f"value of {len(payload)} bytes overflows global "
                f"{name!r} ({var.size} bytes)")
        self.space.write(self.addr_of(name), payload)

    def read_int(self, name: str) -> int:
        """Read a global as a little-endian integer of its declared size."""
        return int.from_bytes(self.read(name), "little")

    def write_int(self, name: str, value: int) -> None:
        """Write a global as a little-endian integer of its declared size."""
        var = self.var(name)
        self.write(name, value.to_bytes(var.size, "little", signed=False))

    # -- GOT swapping --------------------------------------------------------

    @property
    def got_bytes(self) -> int:
        """Size of the GOT in bytes (what a swap copies)."""
        return len(self._order) * self.word

    def current_image(self) -> List[int]:
        """The pointer values currently installed in the GOT."""
        return [self.space.read_word(self._slot_addr(i))
                for i in range(len(self._order))]

    def install_image(self, image: List[int]) -> int:
        """Write a GOT image over the canonical GOT; returns bytes written."""
        if len(image) != len(self._order):
            raise ThreadError(
                f"GOT image has {len(image)} entries, expected {len(self._order)}")
        for i, ptr in enumerate(image):
            self.space.write_word(self._slot_addr(i), ptr)
        self.swap_count += 1
        return self.got_bytes

    def rebind(self, space: AddressSpace) -> None:
        """Point the registry at another address space after migration.

        The GOT and master storage are at fixed data-region addresses that
        exist in every process image, so only the space handle changes.
        """
        self.space = space


class GlobalOffsetTable:
    """One thread's private GOT image plus private global storage.

    Created by :meth:`privatize`, which copies the *current* values of all
    globals into freshly allocated private storage (normally the thread's
    isomalloc heap, so the storage migrates with the thread and its
    addresses never change).
    """

    def __init__(self, registry: GlobalRegistry, image: List[int],
                 storage_addrs: List[int]):
        self.registry = registry
        #: GOT pointer values for this thread (one per declared global).
        self.image = image
        #: Base addresses of this thread's private storage blocks.
        self.storage_addrs = storage_addrs

    @classmethod
    def privatize(cls, registry: GlobalRegistry,
                  alloc: Callable[[int], int]) -> "GlobalOffsetTable":
        """Build a private copy of every global using ``alloc`` for storage.

        ``alloc(nbytes) -> address`` is typically ``thread.malloc``.  The
        new storage is initialized from the globals' current values (the
        ELF-image values at thread creation time).
        """
        image: List[int] = []
        addrs: List[int] = []
        for var in registry._order:
            addr = alloc(var.size)
            current = registry.space.read(registry.addr_of(var.name), var.size)
            registry.space.write(addr, current)
            image.append(addr)
            addrs.append(addr)
        return cls(registry, image, addrs)

    def swap_in(self) -> int:
        """Install this thread's GOT image; returns bytes written.

        Called by the thread scheduler when switching this thread in —
        "The thread scheduler then swaps the GOT when switching threads."
        """
        return self.registry.install_image(self.image)

    def validate_resident(self) -> None:
        """Check every private storage address is resident (post-migration)."""
        for addr in self.storage_addrs:
            if not self.registry.space.is_resident(addr):
                raise MigrationError(
                    f"private global storage at {addr:#x} not resident")
