"""The Converse-style user-level thread scheduler (CthCreate/CthYield/...).

One :class:`CthScheduler` runs on each simulated processor.  It owns the
run queue, drives thread bodies through their generator protocol, charges
the platform's context-switch costs to the processor clock, performs the
stack technique's switch-in/switch-out work, swaps private GOTs, and — when
``emulate_swap`` is on — executes the paper's minimal swap routines against
simulated memory so that a suspended thread's register image physically
lives on its own stack (and therefore migrates with it).

Scheduling is the simple structure the paper recommends for many
applications: "a circular linked list of runnable threads" (Section 4.3) —
a FIFO ready queue — plus suspend/awaken.

Since the run-loop unification the ready queue is not a hand-rolled
deque: each runnable thread's next resumption is a scheduled event on a
per-processor :class:`repro.kernel.EventKernel` (category
``"cth.resume"``), making threads literally "a veneer over events" — the
paper's interchangeability claim, enforced architecturally.  Under the
``"fifo"`` policy every resumption is scheduled at key 0.0 so the
kernel's ``(time, seq)`` tie-break reproduces FIFO order exactly; under
``"priority"`` the key is the thread's priority, and the same tie-break
keeps equal priorities stable — bit-for-bit the orders the old deque
produced.  :class:`_ReadyQueue` keeps the historical ``sched.ready``
surface (append/remove/membership/len) over the kernel's live events.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Optional

from repro.errors import SchedulerError, ThreadError
from repro.kernel import EventKernel, RunPolicy
from repro.core.context import SWAP32, SWAP64, MinimalSwap, RegisterFile
from repro.core.stacks import StackManager
from repro.core.swapglobal import GlobalOffsetTable, GlobalRegistry
from repro.core.thread import ThreadBody, ThreadState, UThread
from repro.sim.processor import Processor

__all__ = ["CthScheduler"]


class _ReadyQueue:
    """Deque-compatible view over the scheduler kernel's live events.

    Every entry in the backing :class:`~repro.kernel.EventKernel` is one
    pending thread resumption, so the queue's length, membership, and
    iteration all derive from the kernel's live-event set.  ``append``
    schedules a resumption (through the scheduler's policy) and
    ``remove`` cancels one — the two mutations migration and the tests
    perform directly on ``sched.ready``.
    """

    __slots__ = ("_sched",)

    def __init__(self, sched: "CthScheduler") -> None:
        self._sched = sched

    def append(self, thread: "UThread") -> None:
        self._sched._enqueue(thread)

    def remove(self, thread: "UThread") -> None:
        for ev in self._sched.kernel.live_events():
            if ev.args and ev.args[0] is thread:
                ev.cancel()
                return
        raise ValueError(f"{thread!r} not in ready queue")

    def __contains__(self, thread: object) -> bool:
        return any(ev.args and ev.args[0] is thread
                   for ev in self._sched.kernel.live_events())

    def __len__(self) -> int:
        return len(self._sched.kernel)

    def __bool__(self) -> bool:
        return not self._sched.kernel.empty

    def __iter__(self) -> Iterator["UThread"]:
        return (ev.args[0] for ev in self._sched.kernel.live_events())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_ReadyQueue {[t.name for t in self]}>"


class CthScheduler:
    """User-level thread scheduler for one simulated processor.

    Parameters
    ----------
    processor:
        The simulated processor this scheduler runs on.
    stack_manager:
        Which Section 3.4 stack technique backs the threads.
    globals_registry:
        Optional program globals; threads created with
        ``privatize_globals=True`` get a private copy swapped in at each
        switch.
    emulate_swap:
        Execute the Figure 10 minimal swap routines for real on each
        switch (slower to simulate; on by default only in tests).
    """

    def __init__(self, processor: Processor, stack_manager: StackManager,
                 globals_registry: Optional[GlobalRegistry] = None,
                 emulate_swap: bool = False, policy: str = "fifo",
                 io_mode: str = "intercept"):
        if policy not in ("fifo", "priority"):
            raise SchedulerError(f"unknown scheduling policy {policy!r}")
        if io_mode not in ("intercept", "naive", "activations"):
            raise SchedulerError(f"unknown io mode {io_mode!r}")
        #: "fifo" is the paper's circular run queue; "priority" lets the
        #: application's priority structure drive scheduling directly
        #: (Section 2.3's flexibility argument for user-level threads).
        self.policy = policy
        #: How blocking calls are treated: "naive" stalls the whole
        #: processor (the kernel suspends the enclosing process, Section
        #: 2.3's disadvantage); "intercept" replaces the call with a
        #: non-blocking one and runs other threads meanwhile (the smarter
        #: runtime layer of [1]); "activations" gets the same overlap via
        #: a kernel upcall to the user scheduler at block and unblock —
        #: scheduler activations [3, 38] — paying two kernel crossings.
        self.io_mode = io_mode
        #: Kernel upcalls performed (scheduler activations mode).
        self.upcalls = 0
        self.processor = processor
        self.profile = processor.profile
        self.space = processor.space
        self.stack_manager = stack_manager
        self.globals_registry = globals_registry
        self.emulate_swap = emulate_swap
        self.arch = "x86_32" if self.space.layout.word_bits == 32 else "x86_64"
        self.swap: MinimalSwap = SWAP32 if self.arch == "x86_32" else SWAP64
        #: The processor's one physical register file; suspended threads'
        #: registers live on their stacks (when swap emulation is on).
        self.machine_regs = RegisterFile(self.arch)
        #: The per-processor event kernel; each pending thread resumption
        #: is one scheduled event on it.  Causality checking is off: the
        #: "time" axis here is a scheduling key (0.0 under FIFO, the
        #: thread priority under "priority"), not a clock.
        self.kernel = EventKernel(name=f"cth-pe{processor.id}",
                                  causality=False)
        self.ready = _ReadyQueue(self)
        self.current: Optional[UThread] = None
        self.threads: Dict[tuple, UThread] = {}
        #: Handler for directives the core scheduler does not understand
        #: (the AMPI layer hooks in here).  Returns True when it consumed
        #: the directive and took responsibility for re-queueing the thread.
        self.directive_handler: Optional[Callable[[UThread, Any], bool]] = None
        self._seq = 0
        # context slots (saved stack pointers) for swap emulation
        self._ctx_mapping = None
        self._ctx_slots: Dict[Any, int] = {}
        self._ctx_next = 0
        if emulate_swap:
            # The scheduler's own ("main") stack, so the swap routine has a
            # valid place to push the machine registers when leaving main.
            self._main_stack = self.space.mmap(
                4 * self.space.layout.page_size, region="stack",
                tag="sched-main-stack")
            self.machine_regs["sp"] = (self._main_stack.start
                                       + self._main_stack.length)
        # -- statistics ------------------------------------------------------
        self.context_switches = 0
        self.threads_created = 0
        self.threads_finished = 0

    # ------------------------------------------------------------------
    # CthCreate / CthExit
    # ------------------------------------------------------------------

    def create(self, body: ThreadBody, name: str = "",
               privatize_globals: bool = False,
               priority: int = 0) -> UThread:
        """CthCreate: make a new ready thread running ``body``.

        ``priority`` matters under the "priority" policy: smaller numbers
        run first (stable among equals).
        """
        rec = self.stack_manager.create_stack()
        self._seq += 1
        thread = UThread((self.processor.id, self._seq), body, self, rec,
                         name=name)
        thread.priority = priority
        npages = rec.size // self.space.layout.page_size
        self.processor.charge(self.profile.uthread_create_ns
                              + self.profile.mem.allocation_cost(npages))
        if privatize_globals:
            if self.globals_registry is None:
                raise SchedulerError("no globals registry to privatize from")
            thread.got = GlobalOffsetTable.privatize(
                self.globals_registry, thread.malloc)
        if self.emulate_swap:
            ctx = self._ctx_slot(thread.tid)
            # A fresh thread's stack carries a zeroed register image.
            owner = self.current
            if not self.stack_manager.concurrent_active:
                # Seeding writes through the manager so an inactive
                # single-address stack lands in its backing store.
                self._seed_inactive(thread, ctx)
            else:
                MinimalSwap.seed_context(self.space, self.arch, ctx,
                                         rec.top)
                rec.extra_live = (len(self.swap.saved)
                                  * self.space.layout.word_bytes)
            assert owner is self.current
        thread.state = ThreadState.READY
        self._enqueue(thread)
        self.threads[thread.tid] = thread
        self.threads_created += 1
        return thread

    def _enqueue(self, thread: UThread) -> None:
        """Queue a thread resumption per the scheduling policy.

        FIFO schedules every resumption at key 0.0 — the kernel's
        ``(time, seq)`` tie-break is insertion order, i.e. the circular
        run queue.  Priority uses the thread's priority as the key;
        smaller numbers run first, equal priorities stay FIFO.
        """
        key = (0.0 if self.policy == "fifo"
               else float(getattr(thread, "priority", 0)))
        # post() (not schedule()): resumptions are fire-and-forget, so
        # skipping the KernelEvent handle keeps the context-switch path
        # allocation-free; ready-queue introspection goes through
        # live_events(), which materializes handles on demand.
        self.kernel.post(key, self._resume, (thread,), "cth.resume",
                         thread.name or f"tid{thread.tid}")

    def _seed_inactive(self, thread: UThread, ctx: int) -> None:
        word = self.space.layout.word_bytes
        sp = thread.stack.top
        for _ in self.swap.saved:
            sp -= word
            self.stack_manager.stack_write(
                thread.stack, sp - thread.stack.base, b"\x00" * word)
        self.space.write(ctx, sp.to_bytes(word, "little"))
        thread.stack.extra_live = len(self.swap.saved) * word

    # ------------------------------------------------------------------
    # CthYield / CthSuspend / CthAwaken
    # ------------------------------------------------------------------

    def awaken(self, thread: UThread) -> None:
        """CthAwaken: put a suspended thread back on the run queue."""
        if thread.state is not ThreadState.SUSPENDED:
            raise ThreadError(
                f"CthAwaken on {thread.name} in state {thread.state.value}")
        thread.state = ThreadState.READY
        self._enqueue(thread)

    # ------------------------------------------------------------------
    # the trampoline
    # ------------------------------------------------------------------

    def run(self, max_switches: Optional[int] = None) -> int:
        """Run ready threads until the queue drains (or a switch budget).

        Returns the number of context switches performed by this call.
        """
        return self.kernel.run(RunPolicy(max_events=max_switches))

    def step_one(self) -> bool:
        """Run exactly one ready thread to its next directive."""
        return self.run(max_switches=1) == 1

    def _resume(self, thread: UThread) -> None:
        """Kernel dispatch target for one queued thread resumption.

        A thread that is no longer READY (it was popped through another
        path, suspended, or finished since this resumption was queued)
        makes the event void — it must not count against a switch budget.
        """
        if thread.state is not ThreadState.READY:
            self.kernel.skip_current()
            return
        self._dispatch(thread)

    def _dispatch(self, thread: UThread) -> None:
        self._switch_in(thread)
        directive = thread.step()
        self._switch_out(thread)
        self._handle(thread, directive)

    def _switch_in(self, thread: UThread) -> None:
        cost = self.profile.uthread_switch_ns
        cost += self.stack_manager.switch_in(thread.stack)
        if thread.got is not None:
            nbytes = thread.got.swap_in()
            cost += self.profile.mem.memcpy_cost(nbytes)
        if self.emulate_swap:
            self.swap.execute(self.space, self.machine_regs,
                              self._ctx_slot("main"),
                              self._ctx_slot(thread.tid))
            # The register image has been popped back off the stack.
            thread.stack.extra_live = 0
            cost += self.swap.cost_ns(self.profile.cpu_ghz)
        thread.state = ThreadState.RUNNING
        thread.switches += 1
        self.current = thread
        self.context_switches += 1
        self.processor.charge(cost)

    def _switch_out(self, thread: UThread) -> None:
        cost = 0.0
        if self.emulate_swap:
            # The thread's stack pointer sits below whatever it alloca()'d;
            # the register image is pushed beneath the live stack data.
            self.machine_regs["sp"] = (thread.stack.top
                                       - thread.stack.used_bytes)
            self.swap.execute(self.space, self.machine_regs,
                              self._ctx_slot(thread.tid),
                              self._ctx_slot("main"))
            # A register image now sits below the thread's data; stack
            # copying must treat it as live.
            thread.stack.extra_live = (len(self.swap.saved)
                                       * self.space.layout.word_bytes)
            cost += self.swap.cost_ns(self.profile.cpu_ghz)
        cost += self.stack_manager.switch_out(thread.stack)
        self.current = None
        self.processor.charge(cost)

    def _handle(self, thread: UThread, directive: Any) -> None:
        if directive == "yield":
            thread.state = ThreadState.READY
            self._enqueue(thread)
        elif directive == "suspend":
            thread.state = ThreadState.SUSPENDED
        elif directive == "exit":
            self._finish(thread)
        elif (isinstance(directive, tuple) and len(directive) == 2
                and directive[0] == "io"):
            self._handle_io(thread, float(directive[1]))
        else:
            if self.directive_handler is not None and \
                    self.directive_handler(thread, directive):
                return
            raise SchedulerError(
                f"{thread.name} yielded unknown directive {directive!r}")

    def _finish(self, thread: UThread) -> None:
        thread.state = ThreadState.FINISHED
        self.threads.pop(thread.tid, None)
        self._release_ctx(thread.tid)
        self.stack_manager.destroy_stack(thread.stack)
        self.threads_finished += 1

    def _handle_io(self, thread: UThread, duration_ns: float) -> None:
        """A blocking call, e.g. disk or socket I/O (paper Section 2.3).

        Naive mode: "the kernel suspends the entire calling kernel thread
        or process, even though another user-level thread might be ready
        to run" — the whole processor stalls for the duration.

        Intercept mode: the runtime replaces the blocking call with a
        non-blocking one; this thread suspends, a completion timer is
        scheduled, and other user-level threads run in the meantime.
        """
        if self.io_mode == "naive" or self.processor.cluster is None:
            self.processor.charge(duration_ns)
            thread.state = ThreadState.READY
            self._enqueue(thread)
            return
        if self.io_mode == "activations":
            # The kernel notifies the user-level scheduler that the thread
            # blocked (one upcall now) and that it unblocked (another at
            # completion) — overlap like interception, at syscall cost.
            self.processor.charge(self.profile.syscall_ns)
            self.upcalls += 1
        thread.state = ThreadState.SUSPENDED
        self.processor.cluster.after(self.processor.id, duration_ns,
                                     self._io_complete, thread)

    def _io_complete(self, thread: UThread) -> None:
        if self.io_mode == "activations":
            self.processor.charge(self.profile.syscall_ns)
            self.upcalls += 1
        if thread.state is ThreadState.SUSPENDED:
            self.awaken(thread)

    # ------------------------------------------------------------------
    # GOT coherence for direct global access outside the trampoline
    # ------------------------------------------------------------------

    def ensure_got(self, thread: UThread) -> None:
        """Make sure the canonical GOT shows ``thread``'s view of globals.

        Inside the trampoline the switch-in already did this; tests that
        poke globals from outside call through here.
        """
        if self.globals_registry is None:
            raise SchedulerError("scheduler has no globals registry")
        if thread.got is not None:
            thread.got.swap_in()

    # ------------------------------------------------------------------
    # context-slot management (swap emulation)
    # ------------------------------------------------------------------

    def _ctx_slot(self, key: Any) -> int:
        addr = self._ctx_slots.get(key)
        if addr is not None:
            return addr
        word = self.space.layout.word_bytes
        if self._ctx_mapping is None:
            self._ctx_mapping = self.space.mmap(
                self.space.layout.page_size, region="data", tag="cth-ctx")
            # Slot 0 belongs to the scheduler's own ("main") context.
        if self._ctx_next + word > self._ctx_mapping.length:
            raise SchedulerError("context-slot page exhausted "
                                 "(too many live threads with emulate_swap)")
        addr = self._ctx_mapping.start + self._ctx_next
        self._ctx_next += word
        self._ctx_slots[key] = addr
        if key == "main":
            # Main's saved sp is its own slot content; seed with a dummy
            # stack pointer pointing at a scratch word.
            self.space.write_word(addr, 0)
        return addr

    def _release_ctx(self, key: Any) -> None:
        self._ctx_slots.pop(key, None)

    # -- migration support -------------------------------------------------

    def saved_sp(self, thread: UThread) -> int:
        """Read a suspended thread's saved stack pointer (swap emulation)."""
        if not self.emulate_swap:
            return thread.stack.top
        return self.space.read_word(self._ctx_slot(thread.tid))

    def adopt(self, thread: UThread, saved_sp: int) -> None:
        """Attach a migrated-in thread to this scheduler's run queue."""
        thread.scheduler = self
        self._seq += 1  # keep local tid space moving; tid itself unchanged
        self.threads[thread.tid] = thread
        if self.emulate_swap:
            self.space.write_word(self._ctx_slot(thread.tid), saved_sp)
        if thread.got is not None and self.globals_registry is not None:
            thread.got.registry = self.globals_registry
        thread.state = ThreadState.READY
        self._enqueue(thread)

    def remove(self, thread: UThread) -> None:
        """Detach a thread from this scheduler (migrate-out)."""
        if self.current is thread:
            raise ThreadError("cannot remove the running thread")
        if thread in self.ready:
            self.ready.remove(thread)
        self.threads.pop(thread.tid, None)
        self._release_ctx(thread.tid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CthScheduler pe{self.processor.id} "
                f"{self.stack_manager.technique} ready={len(self.ready)}>")
