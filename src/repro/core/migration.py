"""Thread migration across simulated processors (paper Sections 3.1, 3.4).

The migrator packs everything the paper says must move with a thread —
stack contents, isomalloc heap pages, allocator metadata, the private GOT
image, the saved register context — ships it as one message through the
cluster network (paying bandwidth for every byte of simulated state), and
reconstructs the thread on the destination processor *at the same virtual
addresses*, so every pointer stored in the thread's memory remains valid.

What does **not** cross the simulated wire is the Python generator object
driving the thread's body: the whole cluster lives in one host process, so
handing the generator to the destination scheduler is free.  That is the
"coarse emulation" substitution documented in DESIGN.md — everything the
paper's techniques exist to preserve (the simulated memory image and its
internal pointers) genuinely moves and is genuinely verified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import MigrationAborted, MigrationError
from repro.core.scheduler import CthScheduler
from repro.core.thread import ThreadState, UThread
from repro.sim.cluster import Cluster
from repro.sim.dispatch import TagDispatcher
from repro.sim.network import Message

__all__ = ["ThreadImage", "ThreadMigrator"]

_TAG = "thmig"


@dataclass
class ThreadImage:
    """A packed thread in flight between processors."""

    tid: tuple
    name: str
    stack_image: dict
    saved_sp: int
    got_image: Optional[List[int]]
    got_storage: Optional[List[int]]
    thread_obj: UThread            # in-process handle (see module docstring)
    wire_bytes: int                # simulated size actually shipped
    stats: dict = field(default_factory=dict)


class ThreadMigrator:
    """Packs, ships, and rebuilds user-level threads between processors.

    Parameters
    ----------
    cluster:
        The simulated machine.
    schedulers:
        One :class:`CthScheduler` per processor, indexed by processor id.
        All schedulers must use the *same* stack technique; isomalloc
        additionally requires all of them to share one arena (the startup
        agreement).
    """

    def __init__(self, cluster: Cluster, schedulers: List[CthScheduler]):
        if len(schedulers) != len(cluster):
            raise MigrationError(
                f"{len(schedulers)} schedulers for {len(cluster)} processors")
        techniques = {s.stack_manager.technique for s in schedulers}
        if len(techniques) != 1:
            raise MigrationError(
                f"mixed stack techniques across processors: {techniques}")
        self.cluster = cluster
        self.schedulers = schedulers
        #: Called with each thread after it is rebuilt on its new processor.
        self.on_arrival: Optional[Callable[[UThread], None]] = None
        self.migrations_started = 0
        self.migrations_completed = 0
        #: Migrations refused before any state moved (MigrationAborted).
        self.migrations_aborted = 0
        #: In-flight images the destination refused; the image bounced
        #: back and the thread was rebuilt on its source processor.
        self.migrations_bounced = 0
        #: Bounced images rebuilt at home.  A returned thread did *not*
        #: migrate — it is back where it started — so these rebuilds are
        #: counted here and never in :attr:`migrations_completed` (nor on
        #: ``thread.migrations``).  At quiescence this equals
        #: :attr:`migrations_bounced`.
        self.migrations_returned = 0
        self.bytes_shipped = 0
        for proc in cluster.processors:
            TagDispatcher.of(proc).register(_TAG, self._on_message)

    # ------------------------------------------------------------------

    def migrate(self, thread: UThread, dst_pe: int) -> None:
        """Migrate a non-running thread to processor ``dst_pe``.

        The thread must be READY or SUSPENDED — a thread migrates at a
        scheduling point, never mid-instruction (same constraint as the
        real runtime, where migration happens from the scheduler).
        """
        src_sched = thread.scheduler
        src_pe = src_sched.processor.id
        if not 0 <= dst_pe < len(self.schedulers):
            raise MigrationError(f"bad destination processor {dst_pe}")
        if thread.state not in (ThreadState.READY, ThreadState.SUSPENDED):
            raise MigrationError(
                f"cannot migrate {thread.name} in state {thread.state.value}")
        if dst_pe == src_pe:
            return  # no-op, like the real runtime
        if self.cluster[dst_pe].failed:
            self.migrations_aborted += 1
            raise MigrationAborted(
                f"cannot migrate {thread.name}: processor {dst_pe} has "
                f"failed")
        # The kernel's "migration.start" decision channel is the sanctioned
        # interception point: a subscriber (the chaos injector) returning a
        # truthy verdict vetoes the migration before any state moves.
        if self.cluster.queue.hooks.decide("migration.start", thread=thread,
                                           src_pe=src_pe, dst_pe=dst_pe):
            self.migrations_aborted += 1
            raise MigrationAborted(
                f"migration of {thread.name} pe{src_pe}->pe{dst_pe} "
                f"aborted by fault injection")

        was_suspended = thread.state is ThreadState.SUSPENDED
        saved_sp = src_sched.saved_sp(thread)
        manager = src_sched.stack_manager
        stack_image = manager.pack(thread.stack)
        image = ThreadImage(
            tid=thread.tid,
            name=thread.name,
            stack_image=stack_image,
            saved_sp=saved_sp,
            got_image=list(thread.got.image) if thread.got else None,
            got_storage=list(thread.got.storage_addrs) if thread.got else None,
            thread_obj=thread,
            wire_bytes=self._image_bytes(stack_image),
            stats={"was_suspended": was_suspended},
        )
        src_sched.remove(thread)
        manager.evacuate(thread.stack)
        thread.state = ThreadState.MIGRATING
        # Packing pays a memory copy of the shipped bytes.
        src_proc = self.cluster[src_pe]
        src_proc.charge(src_sched.profile.mem.memcpy_cost(image.wire_bytes))
        self.cluster.send(src_pe, dst_pe, image,
                          size_bytes=image.wire_bytes, tag=_TAG)
        self.migrations_started += 1
        self.bytes_shipped += image.wire_bytes

    # ------------------------------------------------------------------

    def _on_message(self, msg: Message) -> None:
        image: ThreadImage = msg.payload
        # An already-bounced image is never offered to the
        # "migration.delivery" channel again (one bounce per migration).
        if (not image.stats.get("bounced")
                and self.cluster.queue.hooks.decide(
                    "migration.delivery", image=image, msg=msg) == "bounce"):
            # Mid-flight abort: the destination refuses the image (crash
            # during migration).  Nothing was unpacked there, so the full
            # image simply ships back and the thread is rebuilt at home —
            # the abort-and-retry protocol's in-flight half.
            image.stats["bounced"] = True
            self.migrations_bounced += 1
            self.cluster.send(msg.dst, msg.src, image,
                              size_bytes=image.wire_bytes, tag=_TAG)
            return
        dst_sched = self.schedulers[msg.dst]
        thread = image.thread_obj
        # Unpacking pays the mirror-image memory copy.
        dst_sched.processor.charge(
            dst_sched.profile.mem.memcpy_cost(image.wire_bytes))
        try:
            rec = dst_sched.stack_manager.unpack(image.stack_image)
        except Exception as e:
            raise MigrationError(
                f"failed to rebuild {image.name} on pe{msg.dst}: {e}") from e
        # consume() bookkeeping carried over by unpack via used_bytes.
        thread.stack = rec
        if image.got_image is not None and thread.got is not None:
            thread.got.image = image.got_image
            thread.got.storage_addrs = image.got_storage or []
        dst_sched.adopt(thread, image.saved_sp)
        if image.stats.get("was_suspended"):
            # A suspended thread stays suspended after migration; adopt()
            # optimistically queued it, so take it back out.
            dst_sched.ready.remove(thread)
            thread.state = ThreadState.SUSPENDED
        returned = bool(image.stats.get("bounced"))
        if returned:
            # A bounce-home rebuild is not a completed migration: the
            # thread is back on its source processor, having moved
            # nowhere.  Counting it as completed (and bumping
            # thread.migrations) once fed phantom successful moves into
            # the LB statistics.
            self.migrations_returned += 1
        else:
            thread.migrations += 1
            self.migrations_completed += 1
        hooks = self.cluster.queue.hooks
        if hooks.has("migration.done"):
            # Observability channel (filter-style, payload passes
            # through): one event per rebuild, completed or returned.
            hooks.filter("migration.done", {
                "name": image.name, "src": msg.src, "dst": msg.dst,
                "t": msg.send_time, "bytes": image.wire_bytes,
                "returned": returned})
        if self.on_arrival is not None:
            self.on_arrival(thread)

    @staticmethod
    def _image_bytes(stack_image: dict) -> int:
        """Simulated wire size of a packed stack/slot image."""
        total = 256  # envelope and metadata
        contents = stack_image.get("contents")
        if contents is not None:
            total += len(contents)
        slot = stack_image.get("slot")
        if slot is not None:
            total += len(slot["stack_contents"])
            total += len(slot["heap_contents"])
            total += 16 * len(slot["heap_state"]["free"]) + 64
        return total

    def scheduler_for(self, thread: UThread) -> CthScheduler:
        """The scheduler currently hosting ``thread``."""
        return thread.scheduler

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<ThreadMigrator {self.migrations_completed}/"
                f"{self.migrations_started} migrations, "
                f"{self.bytes_shipped}B shipped>")
