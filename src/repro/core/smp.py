"""SMP execution of user-level threads (paper Sections 3.4.1–3.4.3).

The paper's single-address techniques have an SMP problem: "because there
is only one stack location, there can only be one thread active in each
address space, which means a machine with two physical processors can not
run two stack-copying threads from the same address space simultaneously".
Isomalloc threads have no such constraint — every thread owns distinct
addresses — "which allows the straightforward exploitation of SMP
machines".

:class:`SmpRunner` makes that claim measurable: it executes a batch of
thread work items over ``cores`` virtual CPUs of one node.  Each core has
its own clock; a work item occupies one core for its duration.  When the
stack manager supports concurrent active threads (isomalloc), items run
genuinely in parallel; when it does not (stack copying, memory aliasing),
the single stack address acts as a lock and execution serializes — so a
2-core node gets ~2x throughput with isomalloc and ~1x with the others,
which the tests and the SMP ablation bench check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import SchedulerError
from repro.core.stacks import StackManager, StackRecord
from repro.sim.platform import PlatformProfile

__all__ = ["SmpResult", "SmpRunner"]


@dataclass(frozen=True)
class SmpResult:
    """Outcome of one SMP batch execution."""

    cores: int
    technique: str
    items: int
    #: Completion time (max core clock), ns.
    makespan_ns: float
    #: Sum of item work, ns (the serial-execution floor).
    total_work_ns: float

    @property
    def speedup(self) -> float:
        """Throughput relative to serial execution of the same work."""
        return self.total_work_ns / self.makespan_ns if self.makespan_ns else 0.0


class SmpRunner:
    """Run thread work items over the cores of one SMP node."""

    def __init__(self, profile: PlatformProfile, manager: StackManager,
                 cores: int = 2):
        if cores <= 0:
            raise SchedulerError("an SMP node needs at least one core")
        self.profile = profile
        self.manager = manager
        self.cores = cores

    def run_batch(self, work_ns: Sequence[float]) -> SmpResult:
        """Execute one work item per thread; returns the timing result.

        Each item is: switch the thread's stack in, compute for its
        ``work_ns``, switch out.  With a concurrent-capable stack manager
        the items are scheduled onto the least-loaded core (classic list
        scheduling); otherwise the common stack address serializes every
        switch-in — the next thread cannot start until the previous one's
        stack has left the single address.
        """
        threads: List[Tuple[StackRecord, float]] = [
            (self.manager.create_stack(), float(w)) for w in work_ns]
        core_clock = [0.0] * self.cores
        switch = self.profile.uthread_switch_ns
        # Threads sharing an *address class* share a stack address and
        # serialize on it; distinct classes run truly in parallel.  For
        # isomalloc every thread is its own class (full parallelism); for
        # the single-address techniques every thread is class 0 (total
        # serialization, extra cores idle); k-slot aliasing sits between.
        class_free_at: dict = {}
        for rec, work in threads:
            core = min(range(self.cores), key=lambda c: core_clock[c])
            start = max(core_clock[core],
                        class_free_at.get(rec.address_class, 0.0))
            cost = switch + self.manager.switch_in(rec) + work
            cost += self.manager.switch_out(rec)
            core_clock[core] = start + cost
            class_free_at[rec.address_class] = core_clock[core]
        for rec, _ in threads:
            self.manager.destroy_stack(rec)
        return SmpResult(
            cores=self.cores,
            technique=self.manager.technique,
            items=len(threads),
            makespan_ns=max(core_clock),
            total_work_ns=float(sum(w for _, w in threads)),
        )
