"""The paper's primary contribution: migratable user-level threads.

This package implements, inside the simulated machine of :mod:`repro.sim`
and :mod:`repro.vm`:

* minimal register-file context switching (paper Figure 10),
* user-level threads and a Converse-style scheduler (``CthCreate`` /
  ``CthYield`` / ``CthSuspend`` / ``CthAwaken``, Section 2.3),
* the three migratable-stack techniques of Section 3.4 — stack copying,
  isomalloc, and memory-aliasing stacks,
* the PUP pack/unpack framework (Section 3.1.1),
* swap-global GOT privatization of global variables (Section 3.1.1),
* and the thread migrator that packs a thread's simulated memory, ships it
  through the cluster network, and reconstructs it on the destination
  processor with every simulated pointer still valid.
"""

from repro.core.context import MinimalSwap, RegisterFile, SWAP32, SWAP64
from repro.core.pup import (PackingPupper, Puppable, PupError, SizingPupper,
                            UnpackingPupper, pup_pack, pup_register,
                            pup_unpack)
from repro.core.swapglobal import GlobalRegistry, GlobalOffsetTable
from repro.core.isomalloc import IsomallocArena, IsomallocSlot
from repro.core.stacks import (IsomallocStacks, MemoryAliasStacks,
                               StackCopyStacks, StackManager)
from repro.core.stacks_ext import MultiSlotAliasStacks
from repro.core.thread import ThreadState, UThread
from repro.core.scheduler import CthScheduler
from repro.core.migration import ThreadMigrator
from repro.core.checkpoint import Checkpointer, CheckpointRecord, DiskModel
from repro.core.smp import SmpResult, SmpRunner

__all__ = [
    "MinimalSwap",
    "RegisterFile",
    "SWAP32",
    "SWAP64",
    "Puppable",
    "PupError",
    "SizingPupper",
    "PackingPupper",
    "UnpackingPupper",
    "pup_pack",
    "pup_unpack",
    "pup_register",
    "GlobalRegistry",
    "GlobalOffsetTable",
    "IsomallocArena",
    "IsomallocSlot",
    "StackManager",
    "StackCopyStacks",
    "IsomallocStacks",
    "MemoryAliasStacks",
    "MultiSlotAliasStacks",
    "ThreadState",
    "UThread",
    "CthScheduler",
    "ThreadMigrator",
    "Checkpointer",
    "CheckpointRecord",
    "DiskModel",
    "SmpRunner",
    "SmpResult",
]
