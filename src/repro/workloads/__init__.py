"""Workloads used by the paper's application-level experiments.

* :mod:`repro.workloads.stencil` — the Figure 1 five-point stencil with
  one-dimensional decomposition and ghost-strip exchange, with real NumPy
  numerics (Jacobi iteration), runnable over both the SDAG runtime and AMPI.
* :mod:`repro.workloads.md` — a cube-decomposition molecular-dynamics-like
  workload (the BigSim target application of Figure 11 / Section 4.4).
* :mod:`repro.workloads.btmz` — a NAS BT-MZ-like multi-zone workload
  generator with the documented uneven zone-size distribution, driving the
  Figure 12 load-balancing experiment.
"""

from repro.workloads.stencil import StencilConfig, ampi_stencil_main, run_ampi_stencil
from repro.workloads.md import MDConfig, MDWorkload
from repro.workloads.btmz import (BTMZ_CLASSES, BTMZConfig, Zone, make_zones,
                                  run_btmz, zone_rank_assignment)

__all__ = [
    "StencilConfig",
    "ampi_stencil_main",
    "run_ampi_stencil",
    "MDConfig",
    "MDWorkload",
    "BTMZ_CLASSES",
    "BTMZConfig",
    "Zone",
    "make_zones",
    "zone_rank_assignment",
    "run_btmz",
]
