"""Cube-decomposition molecular-dynamics-like workload (Sections 1, 4.4).

The BigSim experiment of Figure 11 simulates "a Blue Gene like machine with
200,000 processors running a molecular dynamics (MD) simulation code".  The
structure that matters for the flows-of-control study is: the molecular
space is decomposed into cubes, one per target processor; each timestep
computes forces over the cube's atoms and exchanges boundary atoms with the
six face neighbors on a 3-D torus.

Atom counts per cell are deterministic pseudo-random (a hash of the cell
index), giving the mild density variation of real MD without a random seed
dependence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ReproError

__all__ = ["MDConfig", "MDWorkload"]


@dataclass(frozen=True)
class MDConfig:
    """MD target-application parameters."""

    dims: Tuple[int, int, int] = (10, 10, 20)    # target torus (2000 procs)
    mean_atoms_per_cell: int = 500
    atom_jitter: float = 0.3                     # ±30% density variation
    ns_per_atom_step: float = 60.0               # force computation cost
    bytes_per_boundary_atom: float = 48.0        # ghost-exchange payload
    #: "hash" = uncorrelated per-cell jitter; "gradient" = a dense region
    #: at low z (a droplet), giving *spatially correlated* imbalance that
    #: locality-preserving blocked placements actually feel.
    density_profile: str = "hash"
    #: Fraction of a cell's atoms near each face.
    boundary_fraction: float = 0.15

    @property
    def num_cells(self) -> int:
        """Total target processors (= cells)."""
        x, y, z = self.dims
        return x * y * z


class MDWorkload:
    """Per-cell work and communication laws for the MD application."""

    def __init__(self, cfg: MDConfig):
        if cfg.num_cells <= 0:
            raise ReproError("MD needs at least one cell")
        self.cfg = cfg

    # -- topology -------------------------------------------------------------

    def coords(self, cell: int) -> Tuple[int, int, int]:
        """Cell index -> (x, y, z) on the torus."""
        x, y, z = self.cfg.dims
        return (cell % x, (cell // x) % y, cell // (x * y))

    def index(self, cx: int, cy: int, cz: int) -> int:
        """(x, y, z) -> cell index (wrapping torus coordinates)."""
        x, y, z = self.cfg.dims
        return (cx % x) + (cy % y) * x + (cz % z) * x * y

    def neighbors(self, cell: int) -> List[int]:
        """The six face neighbors on the 3-D torus (deduplicated)."""
        cx, cy, cz = self.coords(cell)
        out = []
        for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                           (0, -1, 0), (0, 0, 1), (0, 0, -1)):
            n = self.index(cx + dx, cy + dy, cz + dz)
            if n != cell and n not in out:
                out.append(n)
        return out

    # -- per-cell laws -----------------------------------------------------

    def atoms(self, cell: int) -> int:
        """Deterministic atom count for a cell (see ``density_profile``)."""
        cfg = self.cfg
        if cfg.density_profile == "gradient":
            _, _, cz = self.coords(cell)
            z = cfg.dims[2]
            # Linear droplet: densest slab at z=0, sparsest at the far end.
            frac = 1.0 - (cz / max(1, z - 1))
            scale = 1.0 + cfg.atom_jitter * (2.0 * frac - 1.0)
            return max(1, int(cfg.mean_atoms_per_cell * scale))
        # "hash": uncorrelated per-cell jitter via an integer hash.
        h = (cell * 2654435761) & 0xFFFFFFFF
        u = (h / 0xFFFFFFFF) * 2.0 - 1.0
        return max(1, int(cfg.mean_atoms_per_cell * (1.0 + cfg.atom_jitter * u)))

    def compute_ns(self, cell: int) -> float:
        """Target nanoseconds of force computation per timestep."""
        return self.atoms(cell) * self.cfg.ns_per_atom_step

    def ghost_bytes(self, cell: int) -> int:
        """Bytes sent to each face neighbor per timestep."""
        return int(self.atoms(cell) * self.cfg.boundary_fraction
                   * self.cfg.bytes_per_boundary_atom)

    def total_compute_ns(self) -> float:
        """Aggregate target work per timestep over the whole machine."""
        return sum(self.compute_ns(c) for c in range(self.cfg.num_cells))
