"""Five-point stencil with 1-D decomposition and ghost exchange (Figure 1).

The paper's SDAG example program: each worker owns a strip of a 2-D grid,
sends its boundary rows to both neighbors, waits for both incoming strips
in any order, then relaxes its interior.  Here the numerics are real —
a Jacobi sweep over NumPy arrays — so correctness is checkable against a
sequential reference, and the same computation is provided in AMPI form
(blocking receives on migratable threads) to contrast the two styles the
paper compares in Section 2.4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.ampi import AmpiRuntime
from repro.balance.strategies import NullLB, Strategy

__all__ = ["StencilConfig", "jacobi_reference", "ampi_stencil_main",
           "run_ampi_stencil"]


@dataclass(frozen=True)
class StencilConfig:
    """Problem definition for the stencil workloads."""

    rows: int = 64
    cols: int = 32
    iterations: int = 10
    #: Modeled compute cost per grid point per sweep (ns).
    ns_per_point: float = 4.0


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential reference: ``iterations`` Jacobi sweeps, Dirichlet edges."""
    g = grid.astype(np.float64).copy()
    for _ in range(iterations):
        nxt = g.copy()
        nxt[1:-1, 1:-1] = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1]
                                  + g[1:-1, :-2] + g[1:-1, 2:])
        g = nxt
    return g


def initial_grid(cfg: StencilConfig) -> np.ndarray:
    """Deterministic initial condition: hot top edge, cold elsewhere."""
    g = np.zeros((cfg.rows, cfg.cols))
    g[0, :] = 100.0
    g[-1, :] = -25.0
    return g


def ampi_stencil_main(cfg: StencilConfig, results: Dict[int, np.ndarray],
                      checkpoint_period: int = 0):
    """Build the AMPI rank program for the stencil.

    Each rank owns a contiguous strip of rows.  One iteration is: send
    boundary rows up and down, receive both ghost strips (blocking recv —
    the thread suspends, which is exactly the pattern that forces
    thread-like mechanisms for "traditional" MPI codes, Section 2.4), then
    sweep the interior with NumPy.

    ``checkpoint_period > 0`` adds a coordinated checkpoint every that
    many iterations — the hook the chaos harness uses to exercise
    crash/recovery mid-computation.
    """

    def main(mpi):
        n = mpi.size
        rows_per = cfg.rows // n
        lo = mpi.rank * rows_per
        hi = cfg.rows if mpi.rank == n - 1 else lo + rows_per
        full = initial_grid(cfg)
        strip = full[lo:hi].copy()
        for it in range(cfg.iterations):
            if mpi.rank > 0:
                mpi.send(mpi.rank - 1, strip[0].copy(), tag=("dn", it))
            if mpi.rank < n - 1:
                mpi.send(mpi.rank + 1, strip[-1].copy(), tag=("up", it))
            above = (yield from mpi.recv(source=mpi.rank - 1, tag=("up", it))) \
                if mpi.rank > 0 else None
            below = (yield from mpi.recv(source=mpi.rank + 1, tag=("dn", it))) \
                if mpi.rank < n - 1 else None
            ext = np.vstack([r for r in (
                above[None, :] if above is not None else None,
                strip,
                below[None, :] if below is not None else None)
                if r is not None])
            off = 1 if above is not None else 0
            nxt = strip.copy()
            # Relax every interior point of the global grid that this
            # strip owns.
            for i in range(strip.shape[0]):
                gi = lo + i
                if gi == 0 or gi == cfg.rows - 1:
                    continue
                ei = i + off
                nxt[i, 1:-1] = 0.25 * (ext[ei - 1, 1:-1] + ext[ei + 1, 1:-1]
                                       + ext[ei, :-2] + ext[ei, 2:])
            strip = nxt
            mpi.charge(cfg.ns_per_point * strip.size)
            if checkpoint_period and (it + 1) % checkpoint_period == 0:
                yield from mpi.checkpoint()
        results[mpi.rank] = strip

    return main


def run_ampi_stencil(cfg: StencilConfig, num_procs: int, num_ranks: int,
                     strategy: Strategy | None = None,
                     checkpoint_period: int = 0):
    """Run the AMPI stencil; returns (runtime, assembled final grid)."""
    results: Dict[int, np.ndarray] = {}
    rt = AmpiRuntime(num_procs, num_ranks,
                     ampi_stencil_main(cfg, results, checkpoint_period),
                     strategy=strategy or NullLB(),
                     slot_bytes=256 * 1024, stack_bytes=8 * 1024)
    rt.run()
    strips: List[np.ndarray] = [results[r] for r in range(num_ranks)]
    return rt, np.vstack(strips)
