"""A NAS BT-MZ-like multi-zone workload (paper Section 4.5, Figure 12).

The NAS "Multi-Zone" benchmarks solve the BT/SP/LU application benchmarks
over collections of loosely coupled meshes ("zones").  BT-MZ is the variant
with deliberately uneven zone sizes — its documentation states the ratio of
the largest to the smallest zone is about 20 — "creating the most dramatic
load imbalance", which is why the paper uses it to demonstrate thread-
migration load balancing.

We reproduce the *structural* properties Figure 12 depends on:

* the per-class zone counts and aggregate grid sizes of the real suite;
* an exponential zone-width distribution along x calibrated so
  ``max zone points / min zone points ≈ 20``;
* per-iteration solver work proportional to a zone's point count (the BT
  solver is O(points) per step);
* boundary exchange between adjacent zones, sized by the shared face.

Each AMPI rank owns a contiguous block of zones (the "NPROCS" of a BT-MZ
build is our rank count), computes its zones' work, exchanges zone
boundaries, and hits an ``MPI_Migrate`` point each iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ampi import AmpiRuntime
from repro.balance.strategies import NullLB, Strategy
from repro.errors import ReproError
from repro.sim.network import Network

__all__ = ["Zone", "BTMZ_CLASSES", "BTMZClass", "make_zones",
           "zone_rank_assignment", "BTMZConfig", "BTMZResult",
           "make_btmz_main", "run_btmz"]


@dataclass(frozen=True)
class Zone:
    """One zone: its mesh dimensions and solver cost basis."""

    index: int
    nx: int
    ny: int
    nz: int

    @property
    def points(self) -> int:
        """Grid points in the zone (drives per-step solver work)."""
        return self.nx * self.ny * self.nz

    def face_points(self, other: "Zone") -> int:
        """Boundary points shared with a neighbor (ghost-exchange size)."""
        return min(self.ny, other.ny) * min(self.nz, other.nz)


@dataclass(frozen=True)
class BTMZClass:
    """One problem class of the BT-MZ suite."""

    name: str
    x_zones: int
    y_zones: int
    gx: int       # aggregate grid size
    gy: int
    gz: int
    iterations: int

    @property
    def num_zones(self) -> int:
        return self.x_zones * self.y_zones


#: The published BT-MZ class definitions (zones and aggregate sizes).
BTMZ_CLASSES: Dict[str, BTMZClass] = {
    "S": BTMZClass("S", 2, 2, 24, 24, 6, 60),
    "W": BTMZClass("W", 4, 4, 64, 64, 8, 200),
    "A": BTMZClass("A", 4, 4, 128, 128, 16, 200),
    "B": BTMZClass("B", 8, 8, 304, 208, 17, 200),
    "C": BTMZClass("C", 16, 16, 480, 320, 28, 200),
    "D": BTMZClass("D", 32, 32, 1632, 1216, 34, 250),
}

#: Documented size imbalance of BT-MZ: largest/smallest zone ≈ 20.
SIZE_RATIO = 20.0

#: The three NPB-MZ benchmarks and their zone-size character: BT-MZ's
#: zones are exponentially uneven (ratio ≈ 20); SP-MZ's are all equal;
#: LU-MZ is fixed at a 4x4 grid of equal zones.  "Among these tests,
#: BT-MZ creates the most dramatic load imbalance, which is used in our
#: test runs" — SP-MZ and LU-MZ serve as balanced controls.
BENCHMARKS = ("bt", "sp", "lu")


def _exponential_partition(total: int, parts: int, ratio: float) -> List[int]:
    """Split ``total`` into ``parts`` widths growing geometrically by
    ``ratio`` end to end (width_i ∝ ratio**(i/(parts-1)))."""
    if parts == 1:
        return [total]
    weights = [ratio ** (i / (parts - 1)) for i in range(parts)]
    scale = total / sum(weights)
    widths = [max(1, int(round(w * scale))) for w in weights]
    # Fix rounding drift on the largest part.
    widths[-1] += total - sum(widths)
    if min(widths) < 1:
        raise ReproError(f"cannot partition {total} into {parts} uneven parts")
    return widths


def make_zones(class_name: str, benchmark: str = "bt") -> List[Zone]:
    """Generate the zone list for an NPB-MZ class.

    ``benchmark`` selects the suite member:

    * ``"bt"`` — zone widths along x follow the exponential distribution;
      the max/min point ratio is ≈ :data:`SIZE_RATIO`, the documented
      BT-MZ imbalance;
    * ``"sp"`` — equal-size zones on the class's zone grid;
    * ``"lu"`` — a fixed 4x4 grid of equal-size zones regardless of class.
    """
    if benchmark not in BENCHMARKS:
        raise ReproError(f"unknown NPB-MZ benchmark {benchmark!r}; "
                         f"known: {BENCHMARKS}")
    try:
        cls = BTMZ_CLASSES[class_name]
    except KeyError:
        raise ReproError(f"unknown BT-MZ class {class_name!r}; "
                         f"known: {sorted(BTMZ_CLASSES)}") from None
    x_zones, y_zones = cls.x_zones, cls.y_zones
    if benchmark == "lu":
        x_zones = y_zones = 4
    if benchmark == "bt":
        xw = _exponential_partition(cls.gx, x_zones, SIZE_RATIO)
    else:
        xw = [cls.gx // x_zones] * x_zones
        xw[-1] += cls.gx - sum(xw)
    yw = [cls.gy // y_zones] * y_zones
    yw[-1] += cls.gy - sum(yw)
    zones = []
    idx = 0
    for j in range(y_zones):
        for i in range(x_zones):
            zones.append(Zone(idx, xw[i], yw[j], cls.gz))
            idx += 1
    return zones


def zone_rank_assignment(zones: List[Zone], nprocs: int) -> List[List[Zone]]:
    """Assign zones to ranks in contiguous blocks (the static mapping).

    This is deliberately load-oblivious — the whole point of Figure 12 is
    that thread migration fixes the imbalance this static assignment
    creates, without touching the application.
    """
    if nprocs > len(zones):
        raise ReproError(
            f"BT-MZ needs nprocs <= zones ({nprocs} > {len(zones)})")
    per = len(zones) // nprocs
    extra = len(zones) % nprocs
    out: List[List[Zone]] = []
    cursor = 0
    for r in range(nprocs):
        take = per + (1 if r < extra else 0)
        out.append(zones[cursor:cursor + take])
        cursor += take
    return out


@dataclass(frozen=True)
class BTMZConfig:
    """One Figure 12 test case, e.g. ``BTMZConfig("B", 16, 8)`` = "B.16,8PE"."""

    class_name: str
    nprocs: int          # AMPI ranks (the benchmark's NPROCS)
    npes: int            # actual processors
    iterations: int = 6  # scaled-down outer steps (paper runs full NPB counts)
    benchmark: str = "bt"   # "bt" | "sp" | "lu" (zone-size character)
    #: Solver cost per zone point per iteration (ns); calibrated so class A
    #: steps take milliseconds of virtual time.
    ns_per_point: float = 40.0
    #: Bytes exchanged per boundary point per iteration.
    bytes_per_face_point: float = 40.0
    #: Load-balance (MPI_Migrate) every this many iterations.
    lb_period: int = 1

    @property
    def label(self) -> str:
        """The paper's x-axis label, e.g. ``B.16,8PE``."""
        prefix = "" if self.benchmark == "bt" else f"{self.benchmark.upper()}-"
        return f"{prefix}{self.class_name}.{self.nprocs},{self.npes}PE"


@dataclass(frozen=True)
class BTMZResult:
    """Outcome of one BT-MZ run."""

    config: BTMZConfig
    strategy: str
    makespan_ns: float
    migrations: int
    imbalance_before: float
    imbalance_after: float


def make_btmz_main(cfg: BTMZConfig, checkpoint_period: int = 0):
    """Build the AMPI rank program for one BT-MZ configuration.

    Each rank's iteration: per-zone solver work (charged), boundary
    exchange with the neighboring ranks' zones, then an ``MPI_Migrate``
    point every ``cfg.lb_period`` iterations.  ``checkpoint_period > 0``
    adds a coordinated checkpoint every that many iterations (used by the
    chaos harness to exercise crash/recovery).
    """
    zones = make_zones(cfg.class_name, cfg.benchmark)
    assignment = zone_rank_assignment(zones, cfg.nprocs)
    rank_points = [sum(z.points for z in zs) for zs in assignment]

    def main(mpi):
        my_zones = assignment[mpi.rank]
        my_points = rank_points[mpi.rank]
        left = mpi.rank - 1
        right = mpi.rank + 1
        for it in range(cfg.iterations):
            # BT solver sweep over every owned zone.
            mpi.charge(cfg.ns_per_point * my_points)
            # Boundary exchange with adjacent ranks (zone face data).
            if right < mpi.size:
                face = assignment[mpi.rank][-1].face_points(
                    assignment[right][0])
                mpi.send(right, None, tag=("face", it),
                         size_bytes=int(face * cfg.bytes_per_face_point))
            if left >= 0:
                face = assignment[mpi.rank][0].face_points(
                    assignment[left][-1])
                mpi.send(left, None, tag=("face", it),
                         size_bytes=int(face * cfg.bytes_per_face_point))
            if right < mpi.size:
                yield from mpi.recv(source=right, tag=("face", it))
            if left >= 0:
                yield from mpi.recv(source=left, tag=("face", it))
            if (it + 1) % cfg.lb_period == 0:
                yield from mpi.migrate()
            if checkpoint_period and (it + 1) % checkpoint_period == 0:
                yield from mpi.checkpoint()

    return main


def run_btmz(cfg: BTMZConfig, strategy: Optional[Strategy] = None,
             network: Optional[Network] = None) -> BTMZResult:
    """Run one BT-MZ configuration under AMPI; returns timing and LB stats.

    See :func:`make_btmz_main` for the per-rank program.
    """
    strategy = strategy or NullLB()
    main = make_btmz_main(cfg)

    rt = AmpiRuntime(cfg.npes, cfg.nprocs, main, strategy=strategy,
                     network=network,
                     platform="tungsten_xeon",  # the paper's Fig 12 cluster
                     slot_bytes=256 * 1024, stack_bytes=8 * 1024)
    rt.run()
    first = rt.reports[0] if rt.reports else None
    last = rt.reports[-1] if rt.reports else None
    return BTMZResult(
        config=cfg,
        strategy=strategy.name,
        makespan_ns=rt.makespan_ns,
        migrations=sum(r.migrations for r in rt.reports),
        imbalance_before=first.imbalance_before if first else 1.0,
        imbalance_after=last.imbalance_after if last else 1.0,
    )
