#!/usr/bin/env python3
"""Benchmark the parallel sweep executor — and prove its determinism.

Runs the default chaos grid (3 workloads x 20 seeds) through
``tools/chaos_sweep.py`` at ``--jobs 1`` (serial reference) and
``--jobs 4`` (process pool), interleaved best-of-N so machine drift
lands on both contenders, asserts the two output files are
**byte-identical**, and writes the honest wall-clock numbers to
``results/exec_bench.json``::

    PYTHONPATH=src python tools/bench_exec.py

Speedup tracks the host's core count; on a single-core container the
two modes time alike and the byte-identity assertion is the portable
result.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
SWEEP = os.path.join(ROOT, "tools", "chaos_sweep.py")
OUT = os.path.join(ROOT, "results", "exec_bench.json")

REPEATS = 3
JOBS = (1, 4)


def run_sweep(jobs: int, output: str) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    start = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, SWEEP, "--jobs", str(jobs), "-o", output],
        capture_output=True, text=True, cwd=ROOT, env=env)
    elapsed = time.perf_counter() - start
    if proc.returncode != 0:
        raise SystemExit(
            f"chaos_sweep --jobs {jobs} failed ({proc.returncode}):\n"
            f"{proc.stdout}{proc.stderr}")
    return elapsed


def main() -> int:
    best = {jobs: float("inf") for jobs in JOBS}
    outputs = {}
    with tempfile.TemporaryDirectory(prefix="bench-exec-") as tmp:
        for rep in range(REPEATS):
            # Interleave contenders so drift hits both equally.
            for jobs in JOBS:
                path = os.path.join(tmp, f"sweep-j{jobs}-r{rep}.json")
                best[jobs] = min(best[jobs], run_sweep(jobs, path))
                outputs[jobs] = path
                print(f"  rep {rep + 1}/{REPEATS} --jobs {jobs}: "
                      f"best {best[jobs]:.3f}s", file=sys.stderr)
        blobs = {jobs: open(outputs[jobs], "rb").read() for jobs in JOBS}

    identical = len(set(blobs.values())) == 1
    if not identical:
        print("FAIL: --jobs 1 and --jobs 4 outputs differ", file=sys.stderr)
        return 1

    cells = len(json.loads(blobs[JOBS[0]])["results"])
    serial, pooled = best[JOBS[0]], best[JOBS[1]]
    doc = {
        "benchmark": "tools/bench_exec.py",
        "grid": f"default chaos sweep ({cells} cells: 3 workloads x 20 seeds)",
        "repeats": REPEATS,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "byte_identical": True,
        "wall_s": {f"jobs_{jobs}": round(best[jobs], 3) for jobs in JOBS},
        "speedup_jobs4_over_jobs1": round(serial / pooled, 2),
        "note": ("speedup tracks the host core count; byte-identity of the "
                 "merged output is the portable result"),
    }
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"byte-identical across --jobs {JOBS}; "
          f"serial {serial:.3f}s, pooled {pooled:.3f}s "
          f"(x{serial / pooled:.2f} on {os.cpu_count()} core(s))")
    print(f"wrote {os.path.relpath(OUT, ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
