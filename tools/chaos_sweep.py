#!/usr/bin/env python3
"""Sweep chaos seeds over the standard workloads and report the findings.

Runs every selected workload under N seeded fault schedules, prints a
per-seed outcome table, writes the full machine-readable results to
``results/chaos_sweep.json``, and exits nonzero if any run produced a
*finding* (an invariant violation or an escaped exception).  Failing
runs are shrunk to a minimal still-failing schedule (``--shrink``) and
printed as runnable repro scripts.

Examples::

    python tools/chaos_sweep.py                          # all workloads, 20 seeds
    python tools/chaos_sweep.py -w stencil -n 50
    python tools/chaos_sweep.py --crash-rate 0.4 --shrink
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.chaos import (STANDARD_WORKLOADS, ChaosRunner,  # noqa: E402
                         FaultConfig)

OUT = os.path.join(os.path.dirname(__file__), "..", "results",
                   "chaos_sweep.json")

WORKLOADS = {cls.name: cls for cls in STANDARD_WORKLOADS}


def parse_args(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("-w", "--workload", action="append",
                    choices=sorted(WORKLOADS), default=None,
                    help="workload to sweep (repeatable; default: all)")
    ap.add_argument("-n", "--seeds", type=int, default=20,
                    help="number of seeds (default 20)")
    ap.add_argument("--start-seed", type=int, default=0,
                    help="first seed (default 0)")
    ap.add_argument("--drop-rate", type=float, default=0.01)
    ap.add_argument("--delay-rate", type=float, default=0.08)
    ap.add_argument("--reorder-rate", type=float, default=0.05)
    ap.add_argument("--abort-rate", type=float, default=0.1)
    ap.add_argument("--bounce-rate", type=float, default=0.05)
    ap.add_argument("--ckpt-error-rate", type=float, default=0.02)
    ap.add_argument("--ckpt-corrupt-rate", type=float, default=0.02)
    ap.add_argument("--crash-rate", type=float, default=0.15)
    ap.add_argument("--evac-rate", type=float, default=0.1)
    ap.add_argument("--shrink", action="store_true",
                    help="shrink failing schedules to minimal repros")
    ap.add_argument("-o", "--output", default=OUT,
                    help="JSON output path (default results/chaos_sweep.json)")
    return ap.parse_args(argv)


def result_row(result):
    return {
        "workload": result.workload,
        "seed": result.seed,
        "outcome": result.outcome,
        "detail": result.detail,
        "faults": len(result.schedule),
        "schedule": [repr(ev) for ev in result.schedule],
        "fingerprint": result.fingerprint(),
        "makespan_ns": result.makespan_ns,
        "counters": {k: v for k, v in result.counters.items() if v},
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    config = FaultConfig(
        drop_rate=args.drop_rate, delay_rate=args.delay_rate,
        reorder_rate=args.reorder_rate,
        migrate_abort_rate=args.abort_rate,
        migrate_bounce_rate=args.bounce_rate,
        ckpt_error_rate=args.ckpt_error_rate,
        ckpt_corrupt_rate=args.ckpt_corrupt_rate,
        crash_rate=args.crash_rate, evac_rate=args.evac_rate)
    seeds = range(args.start_seed, args.start_seed + args.seeds)
    names = args.workload or sorted(WORKLOADS)

    rows, findings = [], []
    for name in names:
        runner = ChaosRunner(WORKLOADS[name](), config)
        print(f"== {name}: {args.seeds} seeds ==")
        tally = {}
        for result in runner.sweep(seeds):
            rows.append(result_row(result))
            tally[result.outcome] = tally.get(result.outcome, 0) + 1
            if result.failed:
                findings.append((runner, result))
                print(f"  FINDING {result}")
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(tally.items())))

    for runner, result in findings:
        schedule = result.schedule
        if args.shrink and schedule:
            schedule = runner.shrink(schedule)
            print(f"\n-- shrunk {result.workload} seed={result.seed} from "
                  f"{len(result.schedule)} to {len(schedule)} fault(s) --")
            result = runner.replay(schedule)
        print(f"\n-- repro script ({result.workload}, "
              f"outcome {result.outcome}) --")
        print(runner.repro_script(result))

    payload = {
        "config": {k: getattr(config, k) for k in (
            "drop_rate", "delay_rate", "dup_rate", "reorder_rate",
            "migrate_abort_rate", "migrate_bounce_rate",
            "ckpt_error_rate", "ckpt_corrupt_rate",
            "crash_rate", "evac_rate")},
        "seeds": [int(s) for s in seeds],
        "results": rows,
        "findings": len(findings),
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {len(rows)} results to {args.output}")
    if findings:
        print(f"{len(findings)} chaos finding(s) — exiting nonzero")
        return 1
    print("no findings: every run passed or failed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
