#!/usr/bin/env python3
"""Sweep chaos seeds over the standard workloads and report the findings.

Runs every selected workload under N seeded fault schedules — fanned out
over ``--jobs`` worker processes through :mod:`repro.exec` — prints a
per-seed outcome table, writes the full machine-readable results to
``results/chaos_sweep.json``, and exits nonzero if any run produced a
*finding* (an invariant violation or an escaped exception).  Failing
runs are shrunk to a minimal still-failing schedule (``--shrink``) and
printed as runnable repro scripts.

Results are merged in cell-id order, so the output file is byte-identical
whatever ``--jobs`` is; an empty sweep (``-n 0``) is refused with exit
code 2 instead of "passing" vacuously.

Examples::

    python tools/chaos_sweep.py                          # all workloads, 20 seeds
    python tools/chaos_sweep.py -w stencil -n 50 -j 4
    python tools/chaos_sweep.py --crash-rate 0.4 --shrink
    python tools/chaos_sweep.py --cache .exec-cache      # skip computed cells
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.chaos import (STANDARD_WORKLOADS, ChaosRunner,  # noqa: E402
                         FaultConfig)
from repro.exec import (Cell, ProgressReporter, ResultCache,  # noqa: E402
                        SweepExecutor, SweepSpec, fault_config_params,
                        make_backend)

OUT = os.path.join(os.path.dirname(__file__), "..", "results",
                   "chaos_sweep.json")

WORKLOADS = {cls.name: cls for cls in STANDARD_WORKLOADS}

#: The worker entry point every chaos cell names.
RUNNER = "repro.exec.runners:run_chaos_cell"


def parse_args(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("-w", "--workload", action="append",
                    choices=sorted(WORKLOADS), default=None,
                    help="workload to sweep (repeatable; default: all)")
    ap.add_argument("-n", "--seeds", type=int, default=20,
                    help="number of seeds (default 20)")
    ap.add_argument("--start-seed", type=int, default=0,
                    help="first seed (default 0)")
    ap.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes (default 1: serial reference; "
                         "any value produces byte-identical results)")
    ap.add_argument("--cache", metavar="DIR", default=None,
                    help="result-cache directory: cells whose key hash "
                         "already has a result are skipped")
    ap.add_argument("--force", action="store_true",
                    help="recompute cached cells (still refreshes the cache)")
    ap.add_argument("--drop-rate", type=float, default=0.01)
    ap.add_argument("--delay-rate", type=float, default=0.08)
    ap.add_argument("--reorder-rate", type=float, default=0.05)
    ap.add_argument("--abort-rate", type=float, default=0.1)
    ap.add_argument("--bounce-rate", type=float, default=0.05)
    ap.add_argument("--ckpt-error-rate", type=float, default=0.02)
    ap.add_argument("--ckpt-corrupt-rate", type=float, default=0.02)
    ap.add_argument("--crash-rate", type=float, default=0.15)
    ap.add_argument("--evac-rate", type=float, default=0.1)
    ap.add_argument("--shrink", action="store_true",
                    help="shrink failing schedules to minimal repros")
    ap.add_argument("-o", "--output", default=OUT,
                    help="JSON output path (default results/chaos_sweep.json)")
    return ap.parse_args(argv)


def build_spec(names, seeds, config: FaultConfig) -> SweepSpec:
    """The sweep grid: one cell per (workload, config, seed)."""
    rates = fault_config_params(config)
    cells = [Cell(experiment=f"chaos:{name}", runner=RUNNER,
                  params={"workload": name, "config": rates}, seed=seed)
             for name in names for seed in seeds]
    return SweepSpec("chaos_sweep", cells)


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.seeds < 1:
        print(f"chaos_sweep: refusing an empty sweep — -n/--seeds must be "
              f">= 1 (got {args.seeds}); an empty sweep would write an "
              f"empty results file and exit 0 as if it passed",
              file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"chaos_sweep: -j/--jobs must be >= 1 (got {args.jobs})",
              file=sys.stderr)
        return 2
    config = FaultConfig(
        drop_rate=args.drop_rate, delay_rate=args.delay_rate,
        reorder_rate=args.reorder_rate,
        migrate_abort_rate=args.abort_rate,
        migrate_bounce_rate=args.bounce_rate,
        ckpt_error_rate=args.ckpt_error_rate,
        ckpt_corrupt_rate=args.ckpt_corrupt_rate,
        crash_rate=args.crash_rate, evac_rate=args.evac_rate)
    seeds = range(args.start_seed, args.start_seed + args.seeds)
    names = sorted(set(args.workload or WORKLOADS))

    spec = build_spec(names, seeds, config)
    executor = SweepExecutor(
        spec, backend=make_backend(args.jobs),
        cache=ResultCache(args.cache) if args.cache else None,
        force=args.force)
    reporter = ProgressReporter(executor.hooks)
    try:
        cell_results = executor.run()
    finally:
        reporter.detach()

    rows = [r.value for r in cell_results if r.ok]
    harness_errors = [r for r in cell_results if not r.ok]
    findings = [row for row in rows
                if row["outcome"] in ("violation", "error")]

    for name in names:
        wl_rows = [row for row in rows if row["workload"] == name]
        print(f"== {name}: {len(wl_rows)} seeds ==")
        tally = {}
        for row in wl_rows:
            tally[row["outcome"]] = tally.get(row["outcome"], 0) + 1
            if row["outcome"] in ("violation", "error"):
                print(f"  FINDING [{row['workload']} seed={row['seed']}] "
                      f"{row['outcome']} ({row['detail']})")
        print("  " + ", ".join(f"{k}={v}" for k, v in sorted(tally.items())))

    for row in findings:
        # Re-materialize the deterministic run in-process: the worker
        # shipped plain data, the shrinker needs live FaultEvents.
        runner = ChaosRunner(WORKLOADS[row["workload"]](), config)
        result = runner.run_seed(row["seed"])
        schedule = result.schedule
        if args.shrink and schedule:
            schedule = runner.shrink(schedule)
            print(f"\n-- shrunk {result.workload} seed={result.seed} from "
                  f"{len(result.schedule)} to {len(schedule)} fault(s) --")
            result = runner.replay(schedule)
        print(f"\n-- repro script ({result.workload}, "
              f"outcome {result.outcome}) --")
        print(runner.repro_script(result))

    for r in harness_errors:
        print(f"\nHARNESS ERROR in cell {r.cell_id} "
              f"(attempts={r.attempts}):\n{r.error}", file=sys.stderr)

    payload = {
        "config": {k: getattr(config, k) for k in (
            "drop_rate", "delay_rate", "dup_rate", "reorder_rate",
            "migrate_abort_rate", "migrate_bounce_rate",
            "ckpt_error_rate", "ckpt_corrupt_rate",
            "crash_rate", "evac_rate")},
        "seeds": [int(s) for s in seeds],
        "results": rows,
        "findings": len(findings),
    }
    os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
    with open(args.output, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"\nwrote {len(rows)} results ({len(spec)} cells: "
          f"{len(names)} workload(s) x {args.seeds} seed(s)) "
          f"to {args.output}")
    if harness_errors:
        print(f"{len(harness_errors)} harness error(s) — exiting nonzero")
        return 1
    if findings:
        print(f"{len(findings)} chaos finding(s) — exiting nonzero")
        return 1
    print("no findings: every run passed or failed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
