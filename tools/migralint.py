#!/usr/bin/env python3
"""Repo-local migralint launcher (no install needed).

Equivalent to ``python -m repro.analysis`` with ``src/`` on the path::

    python tools/migralint.py src examples
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "..", "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
