#!/usr/bin/env python3
"""The perf-regression gate: every subsystem's micro-bench, one file.

Runs the kernel/cancel/compiled-switch/migration/executor/serve-dedupe/
lint micro-benches (the workers in
:mod:`repro.obs.benches`) through a serial ``repro.exec`` sweep, compares
each bench's primary metric against the checked-in baseline
``BENCH_repro.json`` at the repo root, and **exits nonzero when any
metric regressed by more than 20%**.  On a clean pass the fresh numbers
replace the baseline, so the file doubles as the bench trajectory::

    PYTHONPATH=src python tools/bench_all.py            # full gate
    PYTHONPATH=src python tools/bench_all.py --check    # CI smoke

``--check`` runs tiny cell sizes and exercises only the mechanics — the
workers, the sweep, the baseline load, the comparison arithmetic — with
no timing assertions and no baseline rewrite; host-timing thresholds are
meaningless on a loaded 1-CPU CI container, so the smoke proves the gate
*runs* and the full mode stays an operator tool (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(ROOT, "src"))

BASELINE = os.path.join(ROOT, "BENCH_repro.json")

#: Regression threshold: a primary metric more than 20% over baseline fails.
THRESHOLD = 1.20

#: bench name -> (worker dotted path, full params, --check params,
#:               primary metric key).
BENCHES = {
    "kernel_dispatch": (
        "repro.obs.benches:run_kernel_bench",
        {"events": 20_000, "repeats": 3},
        {"events": 200, "repeats": 1},
        "ns_per_event"),
    "kernel_cancel": (
        "repro.obs.benches:run_cancel_bench",
        {"events": 20_000, "repeats": 3},
        {"events": 200, "repeats": 1},
        "ns_per_event"),
    "migration": (
        "repro.obs.benches:run_migration_bench",
        {"ranks": 8, "pes": 2, "iterations": 2, "repeats": 2},
        {"ranks": 4, "pes": 2, "iterations": 1, "repeats": 1},
        "ns_per_migration"),
    "compiled_switch": (
        "repro.obs.benches:run_compiled_switch",
        {"flows": 5_000, "rounds": 4, "repeats": 3},
        {"flows": 50, "rounds": 2, "repeats": 1},
        "ns_per_dispatch"),
    "exec_overhead": (
        "repro.obs.benches:run_exec_bench",
        {"cells": 64, "repeats": 3},
        {"cells": 4, "repeats": 1},
        "ns_per_cell"),
    "serve_dedupe": (
        "repro.obs.benches:run_serve_dedupe",
        {"cells": 256, "repeats": 3},
        {"cells": 4, "repeats": 1},
        "ns_per_cell"),
    "query_filter": (
        "repro.obs.benches:run_query_filter",
        {"entries": 100_000, "repeats": 3},
        {"entries": 500, "repeats": 1},
        "ns_per_entry"),
    "lint_flow": (
        "repro.obs.benches:run_lint_bench",
        {"paths": ["src", "examples"], "flow": True, "repeats": 2},
        {"paths": ["tools"], "flow": False, "repeats": 1},
        "ns_per_file"),
}


def run_benches(check: bool) -> dict:
    """Run every bench cell through a serial sweep; returns name->payload."""
    from repro.exec import Cell, SweepExecutor, SweepSpec

    cells = [Cell(experiment=name, runner=runner,
                  params=(small if check else full), seed=0)
             for name, (runner, full, small, _metric) in
             sorted(BENCHES.items())]
    results = SweepExecutor(SweepSpec(name="bench-all", cells=cells)).run()
    out = {}
    by_experiment = {r.cell_id.split("/")[0]: r for r in results}
    for name in BENCHES:
        r = by_experiment[name]
        if not r.ok:
            raise SystemExit(f"bench {name!r} failed:\n{r.error}")
        out[name] = r.value
    return out


def compare(fresh: dict, baseline: dict) -> list:
    """Regressions beyond THRESHOLD: [(bench, metric, old, new, ratio)]."""
    out = []
    old_benches = baseline.get("benches", {})
    for name, (_runner, _full, _small, metric) in sorted(BENCHES.items()):
        old = old_benches.get(name, {}).get(metric)
        new = fresh[name].get(metric)
        if old is None or new is None or old <= 0:
            continue  # new bench or metric: nothing to regress against
        ratio = new / old
        if ratio > THRESHOLD:
            out.append((name, metric, old, new, ratio))
    return out


def load_baseline() -> dict:
    if not os.path.exists(BASELINE):
        return {}
    with open(BASELINE) as fh:
        return json.load(fh)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="CI smoke: tiny sizes, comparison mechanics only, no timing "
             "assertions, baseline left untouched")
    args = parser.parse_args(argv)

    baseline = load_baseline()
    fresh = run_benches(check=args.check)

    print(f"{'bench':<18} {'metric':<18} {'baseline':>12} {'fresh':>12} "
          f"{'ratio':>7}")
    regressions = compare(fresh, baseline)
    flagged = {name for name, *_ in regressions}
    for name, (_r, _f, _s, metric) in sorted(BENCHES.items()):
        old = baseline.get("benches", {}).get(name, {}).get(metric)
        new = fresh[name][metric]
        ratio = f"{new / old:7.2f}" if old else f"{'-':>7}"
        mark = "  REGRESSED" if name in flagged and not args.check else ""
        old_txt = f"{old:12.1f}" if old else f"{'-':>12}"
        print(f"{name:<18} {metric:<18} {old_txt} {new:12.1f} "
              f"{ratio}{mark}")

    if args.check:
        # The smoke only proves the pipeline end-to-end: workers ran,
        # the baseline parsed, the comparison arithmetic executed.
        print(f"--check ok: {len(fresh)} benches ran, baseline "
              f"{'loaded' if baseline else 'absent'}, "
              f"{len(regressions)} ratio(s) computed (not asserted)")
        return 0

    if regressions:
        for name, metric, old, new, ratio in regressions:
            print(f"FAIL: {name}.{metric} regressed x{ratio:.2f} "
                  f"({old:.1f} -> {new:.1f}; threshold x{THRESHOLD})",
                  file=sys.stderr)
        print(f"baseline {os.path.relpath(BASELINE, ROOT)} left untouched",
              file=sys.stderr)
        return 1

    doc = {
        "benchmark": "tools/bench_all.py",
        "threshold": THRESHOLD,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "benches": fresh,
        "note": ("primary metrics are host-side ns/op, best-of-N; the "
                 "gate fails on >20% regression against the previous "
                 "run of this file"),
    }
    with open(BASELINE, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.relpath(BASELINE, ROOT)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
