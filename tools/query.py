#!/usr/bin/env python3
"""Repo-local trace-query launcher (no install needed).

Equivalent to ``python -m repro.query`` with ``src/`` on the path::

    python tools/query.py filter trace.jsonl "ev == 'end' and not skipped"
    python tools/query.py bisect chaos:stencil:seed=1 chaos:stencil:seed=2
    python tools/query.py at flows:stencil:form=compiled:ranks=4 @40
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "..", "src"))

from repro.query.__main__ import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
