#!/usr/bin/env python3
"""Operator smoke for the sweep service: submit, kill, restart, verify.

Drives a real ``python -m repro.serve`` process through the full
restart story::

    PYTHONPATH=src python tools/serve_smoke.py [--cells N] [--sleep S]

1. run a reference sweep on a pristine service (uninterrupted);
2. start a fresh service, submit the same sweep, SIGKILL the process
   after the first few cells complete;
3. restart on the same cache + journal, wait for the journal replay to
   finish the sweep;
4. verify the replayed results are byte-identical to the reference and
   that every pre-kill cell was served from the sharded dedupe cache.

Exits 0 on PASS and writes ``results/serve_smoke.json``; exits 1 naming
the first violated property.  The same scenario runs (smaller) in
tier-1 as ``tests/serve/test_restart.py``; this driver is the
operator-sized version with its evidence on disk.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.errors import ReproError                      # noqa: E402
from repro.serve import ServeClient, wait_until_up       # noqa: E402

SLOW = "tests.exec.workers:slow_echo"


def start_service(workdir: str, tag: str) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + ROOT
    sock = os.path.join(workdir, f"{tag}.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--socket", sock,
         "--cache", os.path.join(workdir, "cache"),
         "--journal", os.path.join(workdir, "journal.jsonl")],
        env=env, cwd=ROOT, stderr=subprocess.DEVNULL)
    if not wait_until_up(sock, 30):
        raise SystemExit(f"FAIL: service ({tag}) never came up")
    return proc, sock


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cells", type=int, default=24,
                        help="sweep size (default: 24)")
    parser.add_argument("--sleep", type=float, default=0.1,
                        help="per-cell sleep seconds (default: 0.1)")
    parser.add_argument("--kill-after", type=int, default=5,
                        help="SIGKILL once this many cells finished")
    args = parser.parse_args(argv)

    cells = [{"experiment": "smoke:serve", "runner": SLOW,
              "params": {"sleep_s": args.sleep}, "seed": s}
             for s in range(args.cells)]
    report = {"tool": "tools/serve_smoke.py", "cells": args.cells,
              "kill_after": args.kill_after, "checks": {}}

    def check(name: str, passed: bool, detail) -> None:
        report["checks"][name] = {"pass": bool(passed), "detail": detail}
        print(f"  {'PASS' if passed else 'FAIL'}  {name}: {detail}")
        if not passed:
            finish(report, failed=True)

    def finish(doc, failed: bool = False) -> None:
        out = os.path.join(ROOT, "results", "serve_smoke.json")
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {os.path.relpath(out, ROOT)}")
        if failed:
            raise SystemExit(1)

    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        # 1. reference: uninterrupted.
        ref_dir = os.path.join(tmp, "ref")
        os.makedirs(ref_dir)
        print("[1/4] reference run (uninterrupted)")
        proc, sock = start_service(ref_dir, "ref")
        with ServeClient(sock, timeout_s=600) as c:
            reference = c.submit("smoke", cells, wait=True)
            c.shutdown()
        proc.wait(30)
        check("reference_completed",
              reference.get("event") == "sweep.end"
              and reference["ok"] == args.cells,
              f"{reference.get('ok')}/{args.cells} ok")

        # 2. the killed run.
        work = os.path.join(tmp, "work")
        os.makedirs(work)
        print(f"[2/4] submit + SIGKILL after {args.kill_after} cells")
        proc, sock = start_service(work, "work")
        done = []

        def on_event(event):
            if (event["event"] == "exec.cell.done"
                    and not event.get("cached")):
                done.append(event["cell_id"])
                if len(done) == args.kill_after:
                    proc.send_signal(signal.SIGKILL)

        t0 = time.monotonic()
        try:
            with ServeClient(sock, timeout_s=600) as c:
                c.submit("smoke", cells, wait=True, watch=True,
                         on_event=on_event)
            check("kill_landed", False, "sweep finished before the kill")
        except (ReproError, OSError):
            pass
        proc.wait(30)
        check("kill_landed", len(done) >= args.kill_after,
              f"killed after {len(done)} cells "
              f"({time.monotonic() - t0:.1f}s in)")
        pre_kill = sum(1 for _d, _s, names in os.walk(
            os.path.join(work, "cache"))
            for n in names if n.endswith(".json"))
        check("cache_has_prekill_cells",
              args.kill_after <= pre_kill < args.cells,
              f"{pre_kill} entries on disk")

        # 3. restart; journal replay finishes the sweep.
        print("[3/4] restart; waiting for journal replay")
        with open(os.path.join(work, "journal.jsonl")) as fh:
            sweep_id = json.loads(fh.readline())["sweep_id"]
        proc, sock = start_service(work, "work2")
        replayed = None
        deadline = time.monotonic() + 600
        while time.monotonic() < deadline:
            with ServeClient(sock) as c:
                out = c.result(sweep_id)
            if out.get("state") == "done":
                replayed = out
                break
            time.sleep(0.1)
        with ServeClient(sock) as c:
            stats = c.stats()
            c.shutdown()
        proc.wait(30)
        check("replay_completed", replayed is not None,
              f"sweep {sweep_id} state "
              f"{replayed and replayed.get('state')}")

        # 4. the properties.
        print("[4/4] verifying restart properties")
        counters = stats["metrics"]["counters"]
        check("replayed_from_journal",
              counters.get("serve.journal.replayed") == 1,
              f"journal replays: {counters.get('serve.journal.replayed')}")
        check("prekill_cells_served_from_cache",
              replayed["cached"] == pre_kill
              and counters.get("serve.cells.deduped") == pre_kill,
              f"{replayed['cached']} dedupe hits == {pre_kill} "
              f"pre-kill entries")
        check("byte_identical_results",
              json.dumps(replayed["results"], sort_keys=True)
              == json.dumps(reference["results"], sort_keys=True),
              f"{len(replayed['results'])} results compared")
        report["pre_kill_cells"] = pre_kill
        report["replay"] = {k: replayed[k]
                            for k in ("ok", "error", "cached", "executed")}
        finish(report)
    print("serve smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
