#!/usr/bin/env python3
"""Benchmark the event kernel against the pre-refactor event queue.

Three scenarios, each best-of-``--repeats`` wall-clock:

* **dispatch** — drain a pre-filled queue of no-op events: raw event
  throughput, with the kernel measured both bare (tracer detached — the
  production configuration) and with a :class:`KernelTracer` attached;
* **len_poll** — ``len(queue)`` with thousands of events pending: the
  pre-refactor queue scanned the heap (O(n)), the kernel keeps a live
  counter (O(1));
* **cancel** — schedule, cancel 90%, drain: the kernel's batched sweep
  versus the legacy pop-time skip.

Writes ``results/kernel_bench.json`` including the two acceptance
checks: kernel dispatch throughput no worse than the legacy queue
(within noise), and tracing-off overhead below 5%.

``--compare ref`` switches the baseline from the pre-kernel legacy
queue to the frozen reference kernel (:mod:`repro.kernel.refkernel`)
and emits a ref-vs-fast A/B table instead: the ``schedule()``-API fast
path, and the bulk ``post_batch``/``cancel_slots`` fast path, each as a
speedup over the reference implementation.

``--compare compiled`` benchmarks the same workload as generator
threads vs compiled continuation state machines (the two forms must
agree on results and dispatch counts), plus the batched-vs-looped
producer ingress for the POSE and BigSim event producers; its report is
*merged* under the ``"compiled"`` key of ``results/kernel_bench.json``
so the baseline numbers survive.

Run:  PYTHONPATH=src python tools/bench_kernel.py [--compare ref|compiled]
"""

import argparse
import gc
import heapq  # migralint: disable=KRN001  (legacy baseline, bench only)
import itertools
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.kernel import EventKernel, KernelTracer  # noqa: E402


# ---------------------------------------------------------------------------
# The pre-refactor EventQueue, inlined verbatim (minus docs) as the
# baseline.  This is the O(n)-len, skip-at-pop implementation every
# runtime used before repro.kernel existed.
# ---------------------------------------------------------------------------

class _LegacyEvent:
    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time, seq, fn, args):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


class LegacyEventQueue:
    def __init__(self):
        self._heap = []
        self._counter = itertools.count()
        self.current_time = 0.0
        self.events_processed = 0

    def __len__(self):
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time, fn, *args):
        ev = _LegacyEvent(time, next(self._counter), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def peek_time(self):
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def step(self):
        self._drop_cancelled()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self.current_time = ev.time
        self.events_processed += 1
        ev.fn(*ev.args)
        return True

    def run(self, until=None, max_events=None):
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                break
            t = self.peek_time()
            if t is None:
                break
            if until is not None and t > until:
                break
            self.step()
            processed += 1
        return processed

    def _drop_cancelled(self):
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------

def _noop():
    pass


def best_of_interleaved(repeats, thunks):
    """Best wall-clock per contender, sampled round-robin.

    Contenders run alternately within each repeat round rather than in
    separate phases, so machine drift (thermal, co-tenants) lands on all
    of them equally — measuring them minutes apart swings the comparison
    by more than the effect being measured.

    The collector is paused around each timed thunk (as ``timeit`` does):
    at a few hundred thousand queued events, generational collections
    triggered by *earlier* rounds' garbage otherwise land inside whichever
    contender happens to be on the clock.
    """
    best = {name: float("inf") for name in thunks}
    for _ in range(repeats):
        for name, fn in thunks.items():
            gc.collect()
            gc.disable()
            try:
                t0 = time.perf_counter()
                fn()
                best[name] = min(best[name], time.perf_counter() - t0)
            finally:
                gc.enable()
    return best


def bench_dispatch(makers, n, repeats):
    def once(make_queue):
        q = make_queue()
        for i in range(n):
            q.schedule(float(i), _noop)
        q.run()

    best = best_of_interleaved(repeats, {
        name: (lambda make=make: once(make)) for name, make in makers.items()})
    return {name: n / dt for name, dt in best.items()}


def bench_len_poll(makers, pending, polls, repeats):
    queues = {}
    for name, make in makers.items():
        q = make()
        for i in range(pending):
            q.schedule(float(i), _noop)
        queues[name] = q

    def once(q):
        total = 0
        for _ in range(polls):
            total += len(q)
        assert total == pending * polls

    best = best_of_interleaved(repeats, {
        name: (lambda q=q: once(q)) for name, q in queues.items()})
    return {name: polls / dt for name, dt in best.items()}


def bench_cancel(makers, n, repeats):
    def once(make_queue):
        q = make_queue()
        evs = [q.schedule(float(i), _noop) for i in range(n)]
        for i, ev in enumerate(evs):
            if i % 10:           # cancel 90%
                ev.cancel()
        q.run()

    best = best_of_interleaved(repeats, {
        name: (lambda make=make: once(make)) for name, make in makers.items()})
    return {name: n / dt for name, dt in best.items()}


def make_kernel():
    return EventKernel(name="bench")


def make_traced_kernel():
    k = EventKernel(name="bench")
    KernelTracer().attach(k)
    return k


# ---------------------------------------------------------------------------
# --compare compiled: compiled continuations vs user-level threads, plus
# the batched-vs-looped producer ingress (POSE / BigSim)
# ---------------------------------------------------------------------------

def _bench_forms(flows, rounds, repeats):
    """A/B the same spin workload as generator threads vs compiled
    continuations through the workload-execution contract."""
    from repro.flows import CompiledContinuationFlow, UserThreadFlow
    from repro.flows.programs import spin_program
    from repro.sim import Processor, get_platform

    runs = {}

    def once(cls, label):
        mech = cls(Processor(0, get_platform("linux_x86")))
        runs[label] = mech.run_workload(spin_program(flows, rounds),
                                        real_flows=False)

    best = best_of_interleaved(repeats, {
        "uthread": lambda: once(UserThreadFlow, "uthread"),
        "compiled": lambda: once(CompiledContinuationFlow, "compiled"),
    })
    table = {}
    for label, dt in best.items():
        run = runs[label]
        table[label] = {
            "dispatches": run.dispatches,
            "kernel_events": run.kernel_events,
            "wall_ms": round(dt * 1e3, 2),
            "ns_per_dispatch": round(dt * 1e9 / run.dispatches, 1),
        }
    # The forms must agree on *what* ran, not just how fast.
    agree = (runs["uthread"].results == runs["compiled"].results
             and runs["uthread"].dispatches == runs["compiled"].dispatches)
    return table, agree


def _bench_pose_producer(repeats):
    """Wall time of a rollback-heavy POSE storm, batched posts on/off."""
    from repro.core.pup import pup_register
    from repro.pose import PoseEngine, Poser
    from repro.sim import Cluster

    class _Chain(Poser):
        def __init__(self, nxt=""):
            self.seen = []
            self.nxt = nxt

        def pup(self, p):
            self.seen = p.list_double(self.seen)
            self.nxt = p.str(self.nxt)

        def on_tok(self, data):
            self.seen.append(float(data))
            if self.nxt:
                return [(self.nxt, "tok", data + 1.0, 1.0)]
            return []

    pup_register(_Chain)
    stats = {}

    def once(batched):
        cl = Cluster(2)
        eng = PoseEngine(cl, throttle_window=None, batched_posts=batched)
        eng.register("sink", _Chain(nxt="b"), 1)
        eng.register("b", _Chain(nxt="c"), 0)
        eng.register("c", _Chain(), 1)
        for vt in range(60, 0, -1):
            eng.schedule("sink", "tok", float(vt), at=float(vt))
        stats[batched] = eng.run()

    best = best_of_interleaved(repeats, {
        "looped": lambda: once(False),
        "batched": lambda: once(True),
    })
    return {
        "events_processed": stats[True].events_processed,
        "rollbacks": stats[True].rollbacks,
        "identical_stats": stats[True] == stats[False],
        "looped_ms": round(best["looped"] * 1e3, 2),
        "batched_ms": round(best["batched"] * 1e3, 2),
        "speedup": round(best["looped"] / best["batched"], 3),
    }


def _bench_bigsim_producer(repeats):
    """Wall time of a BigSim run, ghost scatter batched vs per-send."""
    from repro.ampi.context import AmpiContext
    from repro.bigsim import BigSimEngine, TargetMachine
    from repro.workloads.md import MDConfig, MDWorkload

    results = {}

    def once(batched):
        orig = AmpiContext.send_many
        if not batched:
            # The pre-batch producer: one send per item, same semantics.
            AmpiContext.send_many = lambda self, items: [
                self.send(d, data, tag, size)
                for d, data, tag, size in items]
        try:
            wl = MDWorkload(MDConfig(dims=(4, 4, 4)))
            eng = BigSimEngine(4, TargetMachine(dims=(4, 4, 4)), wl,
                               steps=4, placement="block")
            results[batched] = eng.run()
        finally:
            AmpiContext.send_many = orig

    best = best_of_interleaved(repeats, {
        "looped": lambda: once(False),
        "batched": lambda: once(True),
    })
    return {
        "target_procs": results[True].target_processors,
        "steps": results[True].steps,
        "identical_results": results[True] == results[False],
        "looped_ms": round(best["looped"] * 1e3, 2),
        "batched_ms": round(best["batched"] * 1e3, 2),
        "speedup": round(best["looped"] / best["batched"], 3),
    }


def _bench_send_ingress(n_msgs, repeats):
    """Pure producer ingress: ``Cluster.send_batch`` vs a ``send`` loop.

    The end-to-end POSE/BigSim numbers are dominated by snapshotting and
    application work; this isolates the posting path itself, which is
    where the batch adoption pays (and why the producers adopted it).
    """
    from repro.sim import Cluster

    items = [((i % 7) + 1, ("x", i), 64) for i in range(n_msgs)]

    def looped():
        cl = Cluster(8)
        for dst, payload, size in items:
            cl.send(0, dst, payload, size, tag="t")

    def batched():
        Cluster(8).send_batch(0, items, tag="t")

    best = best_of_interleaved(repeats, {"looped": looped,
                                         "batched": batched})
    return {
        "messages": n_msgs,
        "looped_ns_per_msg": round(best["looped"] * 1e9 / n_msgs, 1),
        "batched_ns_per_msg": round(best["batched"] * 1e9 / n_msgs, 1),
        "speedup": round(best["looped"] / best["batched"], 3),
    }


def run_compiled_compare(args):
    """Compiled-vs-uthread A/B plus producer-batching before/after.

    The report lands under the ``"compiled"`` key of
    ``results/kernel_bench.json``, *merged* into whatever baseline
    report the file already holds so the ref/legacy numbers survive.
    """
    forms, agree = _bench_forms(args.flows, 4, args.repeats)
    ingress = _bench_send_ingress(600, max(5, args.repeats))
    pose = _bench_pose_producer(args.repeats)
    bigsim = _bench_bigsim_producer(max(2, args.repeats // 2))
    return {
        "config": {"flows": args.flows, "rounds": 4,
                   "repeats": args.repeats},
        "forms": forms,
        "producer_batching": {"send_ingress": ingress,
                              "pose": pose, "bigsim": bigsim},
        "acceptance": {
            "forms_agree": agree,
            "send_batch_ingress_faster": ingress["speedup"] > 1.0,
            "pose_batched_identical": pose["identical_stats"],
            "bigsim_batched_identical": bigsim["identical_results"],
        },
    }


# ---------------------------------------------------------------------------
# --compare ref: frozen reference kernel vs the fast path
# ---------------------------------------------------------------------------

def run_ref_compare(args):
    """A/B the fast path against ``repro.kernel.refkernel``."""
    from repro.kernel.refkernel import EventKernel as RefKernel

    n = args.events
    times = [float(i) for i in range(n)]

    def disp_schedule(make):
        q = make()
        for t in times:
            q.schedule(t, _noop)
        q.run()

    def disp_batch():
        k = make_kernel()
        k.post_batch(times, _noop)
        k.run()

    disp = best_of_interleaved(args.repeats, {
        "ref": lambda: disp_schedule(lambda: RefKernel(name="bench")),
        "fast_schedule": lambda: disp_schedule(make_kernel),
        "fast_batch": disp_batch,
    })

    def cancel_schedule(make):
        q = make()
        evs = [q.schedule(t, _noop) for t in times]
        for ev in evs[::2]:
            ev.cancel()
        q.run()

    def cancel_batch():
        k = make_kernel()
        items = k.post_batch(times, _noop)
        k.cancel_slots(items[::2])
        k.run()

    canc = best_of_interleaved(args.repeats, {
        "ref": lambda: cancel_schedule(lambda: RefKernel(name="bench")),
        "fast_schedule": lambda: cancel_schedule(make_kernel),
        "fast_batch": cancel_batch,
    })

    def table(best):
        ref_ns = best["ref"] * 1e9 / n
        rows = {}
        for name, dt in best.items():
            ns = dt * 1e9 / n
            rows[name] = {"ns_per_event": round(ns, 1),
                          "events_per_s": round(n / dt),
                          "speedup_vs_ref": round(ref_ns / ns, 2)}
        return rows

    report = {
        "mode": "ref",
        "config": {"events": n, "repeats": args.repeats},
        "dispatch": table(disp),
        "cancel_50pct": table(canc),
        "acceptance": {
            "fast_schedule_no_worse_than_ref":
                disp["fast_schedule"] <= disp["ref"] * 1.05,
            "fast_batch_dispatch_ge_5x_ref":
                disp["ref"] / disp["fast_batch"] >= 5.0,
            "fast_batch_cancel_ge_5x_ref":
                canc["ref"] / canc["fast_batch"] >= 5.0,
        },
    }
    return report


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--events", type=int, default=200_000,
                    help="events per dispatch/cancel run")
    ap.add_argument("--pending", type=int, default=2_000,
                    help="queued events during len() polling")
    ap.add_argument("--polls", type=int, default=10_000)
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--flows", type=int, default=20_000,
                    help="flow count for --compare compiled")
    ap.add_argument("--compare", choices=("legacy", "ref", "compiled"),
                    default="legacy",
                    help="baseline: the pre-kernel legacy queue (default), "
                         "the frozen reference kernel (ref-vs-fast A/B), "
                         "or compiled continuations vs user-level threads "
                         "plus the batched-producer before/after")
    ap.add_argument("--out", default=os.path.join(
        os.path.dirname(__file__), "..", "results", "kernel_bench.json"))
    args = ap.parse_args(argv)

    if args.compare == "ref":
        report = run_ref_compare(args)
        out = os.path.abspath(args.out)
        os.makedirs(os.path.dirname(out), exist_ok=True)
        with open(out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(json.dumps(report, indent=2, sort_keys=True))
        ok = all(report["acceptance"].values())
        print(f"\nacceptance: {'PASS' if ok else 'FAIL'}  ({out})")
        return 0 if ok else 1

    if args.compare == "compiled":
        report = run_compiled_compare(args)
        out = os.path.abspath(args.out)
        os.makedirs(os.path.dirname(out), exist_ok=True)
        merged = {}
        if os.path.exists(out):
            with open(out) as fh:
                merged = json.load(fh)
        merged["compiled"] = report
        with open(out, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(json.dumps(report, indent=2, sort_keys=True))
        ok = all(report["acceptance"].values())
        print(f"\nacceptance: {'PASS' if ok else 'FAIL'}  ({out})")
        return 0 if ok else 1

    makers = {"legacy": LegacyEventQueue, "kernel": make_kernel,
              "traced": make_traced_kernel}
    disp = bench_dispatch(makers, args.events, args.repeats)
    legacy_eps, kernel_eps, traced_eps = (
        disp["legacy"], disp["kernel"], disp["traced"])

    two = {"legacy": LegacyEventQueue, "kernel": make_kernel}
    poll = bench_len_poll(two, args.pending, args.polls, args.repeats)
    legacy_poll, kernel_poll = poll["legacy"], poll["kernel"]

    canc = bench_cancel(two, args.events, args.repeats)
    legacy_cancel, kernel_cancel = canc["legacy"], canc["kernel"]

    overhead_off = (legacy_eps - kernel_eps) / legacy_eps * 100.0
    overhead_traced = (kernel_eps - traced_eps) / kernel_eps * 100.0

    report = {
        "mode": "legacy",
        "config": {"events": args.events, "pending": args.pending,
                   "polls": args.polls, "repeats": args.repeats},
        "dispatch": {
            "legacy_events_per_s": round(legacy_eps),
            "kernel_events_per_s": round(kernel_eps),
            "kernel_traced_events_per_s": round(traced_eps),
            "tracing_off_overhead_pct": round(overhead_off, 2),
            "tracing_on_overhead_pct": round(overhead_traced, 2),
        },
        "len_poll": {
            "legacy_polls_per_s": round(legacy_poll),
            "kernel_polls_per_s": round(kernel_poll),
            "speedup": round(kernel_poll / legacy_poll, 1),
        },
        "cancel_90pct": {
            "legacy_events_per_s": round(legacy_cancel),
            "kernel_events_per_s": round(kernel_cancel),
            "speedup": round(kernel_cancel / legacy_cancel, 2),
        },
        "acceptance": {
            "throughput_no_worse_than_legacy": kernel_eps >= legacy_eps * 0.95,
            "tracing_off_overhead_lt_5pct": overhead_off < 5.0,
        },
    }

    out = os.path.abspath(args.out)
    os.makedirs(os.path.dirname(out), exist_ok=True)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

    print(json.dumps(report, indent=2, sort_keys=True))
    ok = all(report["acceptance"].values())
    print(f"\nacceptance: {'PASS' if ok else 'FAIL'}  ({out})")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
