#!/usr/bin/env python3
"""Generate docs/api.md from the package's docstrings.

Walks every public subpackage of :mod:`repro`, collects the classes and
functions named in each module's ``__all__``, and renders their signatures
and first docstring paragraphs as a flat markdown reference.  Regenerate
with::

    python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import os
import pkgutil
import sys

OUT = os.path.join(os.path.dirname(__file__), "..", "docs", "api.md")

PACKAGES = [
    "repro.kernel", "repro.vm", "repro.sim", "repro.core", "repro.flows",
    "repro.charm", "repro.ampi", "repro.balance", "repro.bigsim",
    "repro.pose", "repro.workloads", "repro.bench", "repro.analysis",
    "repro.analysis.flow", "repro.chaos", "repro.exec", "repro.obs",
    "repro.query", "repro.serve",
]


def first_paragraph(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    return doc.split("\n\n")[0].replace("\n", " ").strip()


def signature_of(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"


def public_members(module):
    names = getattr(module, "__all__", None)
    if names is None:
        names = [n for n in dir(module) if not n.startswith("_")]
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        # Only document things defined under repro (not re-exported numpy).
        mod = getattr(obj, "__module__", "") or ""
        if not mod.startswith("repro"):
            continue
        yield name, obj


def render_member(name: str, obj) -> list[str]:
    lines = []
    if inspect.isclass(obj):
        lines.append(f"### `{name}{signature_of(obj)}`\n")
        lines.append(first_paragraph(obj) + "\n")
        methods = []
        for mname, meth in inspect.getmembers(obj):
            if mname.startswith("_") or not callable(meth):
                continue
            if getattr(meth, "__qualname__", "").split(".")[0] != obj.__name__:
                continue
            methods.append((mname, meth))
        for mname, meth in methods:
            para = first_paragraph(meth)
            if para:
                lines.append(f"- **`.{mname}{signature_of(meth)}`** — {para}")
        if methods:
            lines.append("")
    elif inspect.isfunction(obj):
        lines.append(f"### `{name}{signature_of(obj)}`\n")
        lines.append(first_paragraph(obj) + "\n")
    else:
        lines.append(f"### `{name}`\n")
        para = first_paragraph(obj)
        lines.append((para or f"Constant of type `{type(obj).__name__}`.")
                     + "\n")
    return lines


def main() -> int:
    out = ["# API reference",
           "",
           "Generated from docstrings by `tools/gen_api_docs.py`; do not",
           "edit by hand.  One section per package, one entry per public",
           "name (`__all__`).",
           ""]
    seen = set()
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        out.append(f"## {pkg_name}")
        out.append("")
        out.append(first_paragraph(pkg))
        out.append("")
        for name, obj in public_members(pkg):
            key = (getattr(obj, "__module__", ""), name)
            if key in seen:
                continue
            seen.add(key)
            out.extend(render_member(name, obj))
    os.makedirs(os.path.dirname(OUT), exist_ok=True)
    with open(OUT, "w") as f:
        f.write("\n".join(out).rstrip() + "\n")
    print(f"wrote {os.path.abspath(OUT)} "
          f"({len(out)} lines, {len(seen)} entries)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
