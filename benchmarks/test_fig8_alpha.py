"""Figure 8: context-switch time vs number of flows on alpha.

Four mechanisms (processes, pthreads, Cth user-level threads, AMPI
migratable threads) are created for real on a simulated 'alpha'
processor and driven through the yield-loop microbenchmark; series end
where the platform's limits refuse further creation.
"""

from _figures_common import run_context_switch_figure


def test_fig8_context_switch_alpha(benchmark):
    run_context_switch_figure(8, "alpha", benchmark)
