"""Ablation: load-balancing the BigSim simulation itself.

The paper's two contributions composed: BigSim's target-processor threads
are migratable, so when the target application has a spatially dense
region (an MD droplet) and the host uses the realistic blocked placement,
GreedyLB migration of the *simulation's own threads* recovers the lost
host efficiency — while leaving the predicted target time bit-identical.
"""

from conftest import emit

from repro.balance import GreedyLB
from repro.bench.report import render_table
from repro.bigsim import BigSimEngine, TargetMachine
from repro.workloads.md import MDConfig, MDWorkload

DIMS = (4, 4, 8)
STEPS = 6


def test_ablation_bigsim_lb(benchmark):
    wl = MDWorkload(MDConfig(dims=DIMS, atom_jitter=0.9,
                             density_profile="gradient"))
    tgt = TargetMachine(dims=DIMS)
    rows = []
    results = {}
    for label, kwargs in (
            ("round-robin, no LB", {"placement": "round_robin"}),
            ("blocked, no LB", {"placement": "block"}),
            ("blocked + GreedyLB", {"placement": "block",
                                    "strategy": GreedyLB(),
                                    "lb_period": 2})):
        res = BigSimEngine(4, tgt, wl, steps=STEPS, **kwargs).run()
        results[label] = res
        rows.append([label, f"{res.host_ns_per_step / 1e6:.3f}",
                     f"{res.predicted_target_ns_per_step / 1e6:.4f}"])
    emit("ablation_bigsim_lb.txt",
         render_table(["configuration", "host ms/step",
                       "predicted target ms/step"], rows,
                      f"Ablation: BigSim of a {DIMS} droplet MD target on "
                      f"4 host processors"))

    blocked = results["blocked, no LB"]
    balanced = results["blocked + GreedyLB"]
    # LB recovers host time lost to the dense slab...
    assert balanced.host_ns_per_step < 0.9 * blocked.host_ns_per_step
    # ...and never perturbs the prediction.
    preds = {f"{r.predicted_target_ns_per_step:.6f}"
             for r in results.values()}
    assert len(preds) == 1

    small = MDWorkload(MDConfig(dims=(3, 3, 3), atom_jitter=0.9,
                                density_profile="gradient"))
    benchmark(lambda: BigSimEngine(
        2, TargetMachine(dims=(3, 3, 3)), small, steps=2,
        placement="block", strategy=GreedyLB(), lb_period=1).run())
