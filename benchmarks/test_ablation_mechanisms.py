"""Ablation: all five flow mechanisms side by side on one machine.

Figures 4-8 compare the paper's four measured mechanisms; this ablation
adds event-driven objects (Section 2.4) and the N:M hybrid (Section 2.3's
related work) on the Linux x86 model, making the full cost spectrum of the
paper's taxonomy visible in one table.
"""

from conftest import emit

from repro.bench.report import render_table
from repro.flows import (AmpiThreadFlow, EventObjectFlow, HybridThreadFlow,
                         KernelThreadFlow, ProcessFlow, UserThreadFlow)
from repro.sim import Processor, get_platform

N_FLOWS = 1000


def test_ablation_all_mechanisms(benchmark):
    rows = []
    costs = {}
    for cls in (EventObjectFlow, UserThreadFlow, AmpiThreadFlow,
                HybridThreadFlow, KernelThreadFlow, ProcessFlow):
        proc = Processor(0, get_platform("linux_x86"))
        mech = cls(proc)
        cost = mech.switch_cost_ns(N_FLOWS)
        costs[mech.label] = cost
        rows.append([mech.label, f"{cost / 1000:.3f}",
                     f"{mech.cache_weight:.2f}"])
    emit("ablation_mechanisms.txt",
         render_table(["mechanism", "us/switch @1000 flows", "cache weight"],
                      rows,
                      "Ablation: the full flow-of-control cost spectrum "
                      "(linux_x86)"))

    # The paper's taxonomy ordering, fully populated.
    assert (costs["event"] < costs["cth"] < costs["ampi"]
            < costs["n:m"] < costs["pthread"] < costs["process"])
    # Event-driven dispatch is an order of magnitude below kernel threads.
    assert costs["pthread"] / costs["event"] > 5

    proc = Processor(0, get_platform("linux_x86"))
    mech = EventObjectFlow(proc)
    benchmark(mech.switch_cost_ns, N_FLOWS)
