"""Figure 9: context-switch time vs stack size for migratable threads.

Sweeps live stack size from 8 KB to 8 MB (the paper's alloca() experiment)
through the three real stack managers on the Linux x86 model and checks the
paper's qualitative result: stack copying becomes unusable past ~20 KB,
isomalloc is flat and fastest, memory aliasing sits at mmap cost (~4 µs)
with only slow growth.
"""

from conftest import emit

from repro.bench.figures import STACK_SIZES, stack_size_series
from repro.bench.report import render_series
from repro.core.stacks import MemoryAliasStacks
from repro.sim import Processor, get_platform


def test_fig9_stack_size_sweep(benchmark):
    sizes, series = stack_size_series("linux_x86")
    labels = [f"{s // 1024}KB" if s < 1024 * 1024 else f"{s // (1024*1024)}MB"
              for s in sizes]
    emit("fig9_stacksize.txt",
         render_series("stack", labels, series,
                       "Figure 9: context switch time (us) vs stack size, "
                       "x86 Linux — stack copy / isomalloc / memory alias"))

    idx20k = min(range(len(sizes)), key=lambda i: abs(sizes[i] - 20 * 1024))
    copy, iso, alias = (series["stack_copy"], series["isomalloc"],
                        series["memory_alias"])

    # Stack copy: linear in stack size, "unusably slow" past ~20 KB.
    assert copy[idx20k] > 10.0                    # tens of microseconds
    assert copy[-1] > 1_000.0                     # 8 MB: milliseconds
    assert copy[-1] / copy[0] > 500               # ~linear over 3 decades

    # Isomalloc: fastest overall, no dependence on stack size.
    assert max(iso) == min(iso)
    assert all(iso[i] <= alias[i] for i in range(len(sizes)))
    assert all(iso[i] <= copy[i] for i in range(len(sizes)))

    # Memory alias: ~4 us at small sizes, grows only slowly, and beats
    # copying decisively for large stacks.
    assert 2.0 < alias[0] < 8.0
    assert alias[-1] < 10 * alias[0]              # "very slowly"
    assert alias[-1] < copy[-1] / 50              # much faster than copying

    # pytest-benchmark target: a real aliasing switch (remap) round trip.
    proc = Processor(0, get_platform("linux_x86"))
    mgr = MemoryAliasStacks(proc.space, proc.profile, stack_bytes=64 * 1024)
    a, b = mgr.create_stack(), mgr.create_stack()

    def cycle():
        mgr.switch_in(a)
        mgr.switch_out(a)
        mgr.switch_in(b)
        mgr.switch_out(b)

    benchmark(cycle)
