"""Figure 12: NAS BT-MZ with and without thread-migration load balancing.

Runs every configuration on the paper's x axis (A.8,4PE through B.64,8PE)
twice — NullLB versus GreedyLB thread migration — and checks the paper's
two observations: load balancing always helps, and same-class/same-PE
configurations converge to about the same time with LB while varying
dramatically without it.
"""

from conftest import emit

from repro.balance import GreedyLB
from repro.bench.figures import btmz_series
from repro.bench.report import render_table
from repro.workloads.btmz import BTMZConfig, run_btmz


def test_fig12_btmz_load_balancing(benchmark):
    results = btmz_series()
    rows = []
    for label, no_lb, with_lb in results:
        rows.append([
            label,
            f"{no_lb.makespan_ns / 1e6:.1f}",
            f"{with_lb.makespan_ns / 1e6:.1f}",
            f"{no_lb.makespan_ns / with_lb.makespan_ns:.2f}x",
            f"{with_lb.imbalance_before:.2f} -> {with_lb.imbalance_after:.2f}",
            with_lb.migrations,
        ])
    emit("fig12_btmz.txt",
         render_table(["config", "no LB (ms)", "with LB (ms)", "speedup",
                       "max/avg load", "migrations"], rows,
                      "Figure 12: BT-MZ execution time with vs without "
                      "thread-migration load balancing"))

    # LB never loses, and actually migrates something.
    for label, no_lb, with_lb in results:
        assert with_lb.makespan_ns < no_lb.makespan_ns, label
        assert with_lb.migrations > 0, label

    # Class B on 8 PEs: converged with LB, dramatic variation without.
    b8_no = [n.makespan_ns for (l, n, w) in results
             if l.startswith("B") and l.endswith("8PE")]
    b8_lb = [w.makespan_ns for (l, n, w) in results
             if l.startswith("B") and l.endswith("8PE")]
    assert len(b8_no) == 3
    assert max(b8_no) / min(b8_no) > 1.5       # dramatic variation
    assert max(b8_lb) / min(b8_lb) < 1.3       # about the same

    # Benchmark target: one small BT-MZ run with LB, end to end.
    benchmark(lambda: run_btmz(BTMZConfig("S", 4, 2, iterations=2),
                               GreedyLB()))
