"""Figure 7: context-switch time vs number of flows on ibm_sp.

Four mechanisms (processes, pthreads, Cth user-level threads, AMPI
migratable threads) are created for real on a simulated 'ibm_sp'
processor and driven through the yield-loop microbenchmark; series end
where the platform's limits refuse further creation.
"""

from _figures_common import run_context_switch_figure


def test_fig7_context_switch_ibmsp(benchmark):
    run_context_switch_figure(7, "ibm_sp", benchmark)
