"""Ablation: page size vs the memory-aliasing switch cost.

DESIGN.md design decision 2: the page-table-level VM substrate makes a
memory-aliasing switch a real per-page remap, so its cost depends on page
size for a fixed stack.  This bench sweeps the page size and shows the
trade-off (bigger pages -> fewer page-table edits per switch -> cheaper
aliasing), plus where the techniques cross over.
"""

from conftest import emit

from repro.bench.report import render_series
from repro.core.stacks import MemoryAliasStacks, StackCopyStacks
from repro.sim import Processor, get_platform

STACK = 256 * 1024
PAGE_SIZES = [4096, 8192, 16384, 65536]


def test_ablation_page_size(benchmark):
    alias_costs, copy_costs = [], []
    for page in PAGE_SIZES:
        profile = get_platform("linux_x86").with_overrides(page_size=page)
        proc = Processor(0, profile)
        alias = MemoryAliasStacks(proc.space, profile, stack_bytes=STACK)
        a, b = alias.create_stack(), alias.create_stack()
        alias.switch_in(a)
        alias.switch_out(a)
        alias_costs.append(alias.switch_in(b) / 1000.0)

        proc2 = Processor(0, profile)
        copy = StackCopyStacks(proc2.space, profile, stack_bytes=STACK)
        c = copy.create_stack()
        c.consume(STACK)
        copy_costs.append(copy.switch_in(c) / 1000.0)

    emit("ablation_page_size.txt",
         render_series("page size", [f"{p // 1024}KB" for p in PAGE_SIZES],
                       {"memory_alias_us": alias_costs,
                        "stack_copy_us": copy_costs},
                       f"Ablation: switch cost (us) vs page size, "
                       f"{STACK // 1024} KB live stacks"))

    # Bigger pages make aliasing cheaper (fewer PTE edits per switch)...
    assert alias_costs == sorted(alias_costs, reverse=True)
    # ...while stack copying is indifferent to page size.
    assert max(copy_costs) - min(copy_costs) < 1e-9
    # At this stack size, aliasing beats copying for every page size.
    assert all(a < c for a, c in zip(alias_costs, copy_costs))

    profile = get_platform("linux_x86")
    proc = Processor(0, profile)
    alias = MemoryAliasStacks(proc.space, profile, stack_bytes=STACK)
    a, b = alias.create_stack(), alias.create_stack()

    def cycle():
        alias.switch_in(a)
        alias.switch_out(a)
        alias.switch_in(b)
        alias.switch_out(b)

    benchmark(cycle)
