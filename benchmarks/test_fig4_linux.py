"""Figure 4: context-switch time vs number of flows on linux_x86.

Four mechanisms (processes, pthreads, Cth user-level threads, AMPI
migratable threads) are created for real on a simulated 'linux_x86'
processor and driven through the yield-loop microbenchmark; series end
where the platform's limits refuse further creation.
"""

from _figures_common import run_context_switch_figure


def test_fig4_context_switch_linux(benchmark):
    run_context_switch_figure(4, "linux_x86", benchmark)
