"""Figure 10: minimal user-level context-switch routines.

Reconstructs the 32- and 64-bit x86 swap routines instruction by
instruction, reports their modeled cost on the paper's 2.2 GHz Athlon64
(paper: 16 ns and 18 ns), executes them for real against simulated memory,
and wall-clock benchmarks the executable model.
"""

from conftest import emit

from repro.bench.figures import minimal_swap_rows
from repro.bench.report import render_table
from repro.core.context import MinimalSwap, RegisterFile, SWAP32, SWAP64
from repro.sim import get_platform
from repro.vm import AddressSpace, PhysicalMemory
from repro.vm.layout import MB


def test_fig10_minimal_swap(benchmark):
    rows = minimal_swap_rows(cpu_ghz=2.2)
    emit("fig10_minswap.txt",
         render_table(["routine", "instructions", "memory ops",
                       "modeled cycles", "modeled ns @2.2GHz"], rows,
                      "Figure 10: minimal context switching routines "
                      "(paper measured 16 ns / 18 ns on a 2.2 GHz Athlon64)")
         + "\n\nswap32 instruction stream:\n  "
         + "\n  ".join(f"{i.op:5s} {i.operand}" for i in SWAP32.instructions)
         + "\n\nswap64 instruction stream:\n  "
         + "\n  ".join(f"{i.op:5s} {i.operand}" for i in SWAP64.instructions))

    t32 = SWAP32.cost_ns(2.2)
    t64 = SWAP64.cost_ns(2.2)
    assert 10 < t32 < 22                        # the 16 ns ballpark
    assert 14 < t64 < 26                        # the 18 ns ballpark
    assert t64 > t32                            # more callee-saved registers
    assert SWAP32.instruction_count == 13
    assert SWAP64.instruction_count == 17

    # A context switch that costs even one syscall loses the advantage
    # (Section 4.3): the modeled syscall is ~an order of magnitude bigger.
    assert get_platform("opteron").syscall_ns > 5 * t32

    # Wall-clock benchmark: execute the real swap model round trip.
    space = AddressSpace(get_platform("linux_x86").layout(),
                         PhysicalMemory(4 * MB))
    stacks = space.mmap(2 * 4096, region="stack")
    ctx = space.mmap(4096, region="data")
    regs = RegisterFile("x86_32")
    MinimalSwap.seed_context(space, "x86_32", ctx.start + 8,
                             stacks.start + 8192)
    regs["sp"] = stacks.start + 4096

    def roundtrip():
        SWAP32.execute(space, regs, ctx.start, ctx.start + 8)
        SWAP32.execute(space, regs, ctx.start + 8, ctx.start)

    benchmark(roundtrip)
