"""Figure 11: BigSim MD simulation time per step vs simulating processors.

Runs the cube-decomposition MD application over a Blue Gene-like target
machine with every target processor as a user-level thread, on 4–64
simulating processors.  Default target is 2,000 processors (500 threads
per simulating processor at p = 4); ``REPRO_FULL=1`` uses the paper's full
200,000 (50,000 per simulating processor at p = 4).
"""

from conftest import emit

from repro.bench.figures import bigsim_series, full_scale
from repro.bench.report import render_series
from repro.bigsim import BigSimEngine, TargetMachine
from repro.workloads.md import MDConfig, MDWorkload


def test_fig11_bigsim_scaling(benchmark):
    procs, series, targets = bigsim_series()
    scale_note = "full paper scale" if full_scale() else \
        "scaled default (REPRO_FULL=1 for 200,000)"
    emit("fig11_bigsim.txt",
         render_series("host procs", procs, series,
                       f"Figure 11: simulation time per MD step (ms) using "
                       f"{targets} user-level threads ({scale_note})"))

    times = series["time_per_step_ms"]
    # Excellent scalability: strictly decreasing, near-linear speedup.
    assert all(a > b for a, b in zip(times, times[1:]))
    speedup_4_to_64 = times[0] / times[-1]
    assert speedup_4_to_64 > 8.0          # >= half of the ideal 16x

    # The Section 4.4 claim: many thousands of flows per processor is
    # feasible with user-level threads (and Table 2 says it isn't with
    # processes or kernel threads).
    threads_per_proc = targets / procs[0]
    assert threads_per_proc >= 500

    # Benchmark target: one full (small) BigSim run end to end.
    wl = MDWorkload(MDConfig(dims=(4, 4, 4)))

    def small_run():
        BigSimEngine(4, TargetMachine(dims=(4, 4, 4)), wl, steps=1).run()

    benchmark(small_run)
