"""Ablation: virtualization ratio vs load-balance quality.

DESIGN.md design decision 5 / paper Section 4.5: "AMPI requires the number
of AMPI migratable threads to be much larger than the actual number of
processors" for load balancing to be effective.  This bench fixes the
machine (8 PEs) and the total work (class B zones) and sweeps the number
of ranks; balance quality after GreedyLB improves with the virtualization
ratio.
"""

from conftest import emit

from repro.balance import GreedyLB
from repro.bench.report import render_series
from repro.workloads.btmz import BTMZConfig, run_btmz

# 9 ranks is deliberately row-misaligned: each rank's zones straddle the
# exponential x-distribution, so rank loads are very unequal and there is
# barely one rank per processor to move.
RANK_COUNTS = [9, 12, 16, 32]
PES = 8


def test_ablation_virtualization_ratio(benchmark):
    imb_after, makespans = [], []
    for nprocs in RANK_COUNTS:
        res = run_btmz(BTMZConfig("B", nprocs, PES, iterations=4),
                       GreedyLB())
        imb_after.append(res.imbalance_after)
        makespans.append(res.makespan_ns / 1e6)

    emit("ablation_granularity.txt",
         render_series("ranks", RANK_COUNTS,
                       {"imbalance_after_lb": imb_after,
                        "makespan_ms": makespans},
                       f"Ablation: LB quality vs virtualization ratio "
                       f"(class B zones on {PES} PEs, GreedyLB)"))

    # More virtualization -> finer migratable grains -> better balance:
    # post-LB imbalance falls monotonically with the rank count.
    assert all(a >= b - 1e-9 for a, b in zip(imb_after, imb_after[1:]))
    # Barely-virtualized (9 ranks on 8 PEs): LB cannot fix the imbalance.
    assert imb_after[0] > 1.2
    # Well-virtualized (4x ranks per PE): essentially perfect balance.
    assert imb_after[-1] < 1.1

    benchmark(lambda: run_btmz(BTMZConfig("B", 16, 8, iterations=2),
                               GreedyLB()))
