"""Shared driver for the Figures 4–8 context-switch benchmarks."""

from __future__ import annotations

from conftest import emit

from repro.bench.figures import context_switch_series
from repro.bench.report import render_series
from repro.flows import UserThreadFlow
from repro.sim import Processor, get_platform


def run_context_switch_figure(fig_no: int, platform: str, benchmark) -> None:
    """Generate one of Figures 4–8, assert its shape, benchmark a switch."""
    profile = get_platform(platform)
    xs, series = context_switch_series(platform)
    emit(f"fig{fig_no}_{platform}.txt",
         render_series("n_flows", xs, series,
                       f"Figure {fig_no}: context switch time (us) vs "
                       f"number of flows — {profile.description}"))

    def last(name):
        vals = [v for v in series[name] if v is not None]
        return vals[-1]

    def first(name):
        return series[name][0]

    if profile.ignores_repeated_sched_yield:
        # Figures 7-8: process/pthread "artificially low" (no-op yields).
        assert first("process") == first("pthread")
        assert first("process") < first("cth")
    else:
        # Figures 4-6: user-level threads fastest; kernel flows are
        # microseconds and above.
        assert first("cth") < first("ampi") < first("pthread")
        assert first("pthread") <= first("process")
        assert first("process") >= 1.0          # >= 1 us

    # Cth grows slowly and monotonically: the added cost saturates at the
    # cache-penalty ceiling rather than growing without bound.
    cth = [v for v in series["cth"] if v is not None]
    assert cth == sorted(cth)
    ceiling_us = profile.cache_penalty_ns / 1000.0
    assert last("cth") <= first("cth") + ceiling_us

    # Kernel mechanisms end at their platform limits (truncated series).
    if profile.max_kthreads is not None:
        assert series["pthread"][-1] is None
    if profile.max_processes is not None and profile.max_processes < 50_000:
        assert series["process"][-1] is None
    # User-level threads reach the end of the grid, except where a
    # per-user memory cap truncates them (the IBM SP's 15,000 in Table 2).
    if profile.max_uthreads is None:
        assert series["cth"][-1] is not None
        assert series["ampi"][-1] is not None
    else:
        measured = sum(1 for v in series["cth"] if v is not None)
        assert all(x <= profile.max_uthreads
                   for x in xs[:measured])

    # pytest-benchmark target: the real cost of one modeled uthread switch
    # computation on this platform.
    mech = UserThreadFlow(Processor(0, profile))
    benchmark(mech.switch_cost_ns, 1_000)
