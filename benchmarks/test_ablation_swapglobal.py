"""Ablation: swap-global cost vs number of privatized globals.

The swap-global scheme (paper Section 3.1.1) copies one GOT image per
context switch.  Its cost therefore grows with the number of global
variables the program declares — negligible for typical codes (a GOT of a
few hundred entries is a sub-microsecond copy), which is why AMPI can
afford it on every switch.  This bench sweeps the GOT size and locates
where the GOT swap starts to rival the base thread-switch cost.
"""

from conftest import emit

from repro.bench.report import render_series
from repro.core import CthScheduler, GlobalRegistry, IsomallocArena, \
    IsomallocStacks
from repro.sim import Cluster

GOT_SIZES = [0, 8, 64, 256, 1024, 4096]


def run_with_globals(n_globals, switches=50):
    cluster = Cluster(1)
    arena = IsomallocArena(cluster.platform.layout(), 1,
                           slot_bytes=512 * 1024)
    registry = GlobalRegistry(cluster[0].space)
    for i in range(n_globals):
        registry.declare(f"g{i}", 8)
    registry.build()
    sched = CthScheduler(
        cluster[0],
        IsomallocStacks(cluster[0].space, cluster.platform, arena, 0,
                        stack_bytes=8 * 1024),
        globals_registry=registry)

    def body(th):
        for _ in range(switches):
            yield "yield"

    t = sched.create(body, privatize_globals=n_globals > 0)
    start = cluster[0].now
    sched.run()
    total_switches = t.switches
    return (cluster[0].now - start) / total_switches


def test_ablation_got_size(benchmark):
    costs = [run_with_globals(n) / 1000.0 for n in GOT_SIZES]
    emit("ablation_swapglobal.txt",
         render_series("globals", GOT_SIZES,
                       {"us_per_switch": costs},
                       "Ablation: per-switch cost (us) vs number of "
                       "privatized globals (GOT swap at every switch)"))

    # Cost grows monotonically with GOT size...
    assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))
    # ...but a typical GOT (tens of globals) adds well under one base
    # switch, and even 256 entries stays in the same order of magnitude.
    base = costs[0]
    assert costs[GOT_SIZES.index(64)] < 2 * base
    assert costs[GOT_SIZES.index(256)] < 3 * base
    # A pathological 4096-entry GOT dominates the switch entirely.
    assert costs[-1] > 10 * base

    benchmark(lambda: run_with_globals(64, switches=5))
