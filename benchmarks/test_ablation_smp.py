"""Ablation: SMP throughput of the three stack techniques.

Paper Sections 3.4.1/3.4.3: stack copying and memory aliasing allow only
one active thread per address space, so extra cores of an SMP node buy
nothing; isomalloc threads run anywhere.  This bench sweeps the core count
and reports effective speedup per technique.
"""

from conftest import emit

from repro.bench.report import render_series
from repro.core.isomalloc import IsomallocArena
from repro.core.smp import SmpRunner
from repro.core.stacks import (IsomallocStacks, MemoryAliasStacks,
                               StackCopyStacks)
from repro.core.stacks_ext import MultiSlotAliasStacks
from repro.sim import Processor, get_platform

CORES = [1, 2, 4, 8]
WORK = [400_000.0] * 32


def run(technique, cores):
    proc = Processor(0, get_platform("linux_x86"))
    profile = proc.profile
    if technique == "isomalloc":
        arena = IsomallocArena(proc.layout, 1, slot_bytes=128 * 1024)
        mgr = IsomallocStacks(proc.space, profile, arena, 0,
                              stack_bytes=8 * 1024)
    elif technique == "stack_copy":
        mgr = StackCopyStacks(proc.space, profile, stack_bytes=8 * 1024)
    elif technique.startswith("alias_k"):
        mgr = MultiSlotAliasStacks(proc.space, profile,
                                   stack_bytes=8 * 1024,
                                   slots=int(technique.split("=")[1]))
    else:
        mgr = MemoryAliasStacks(proc.space, profile, stack_bytes=8 * 1024)
    return SmpRunner(profile, mgr, cores=cores).run_batch(WORK)


def test_ablation_smp_speedup(benchmark):
    series = {}
    for technique in ("isomalloc", "stack_copy", "memory_alias",
                      "alias_k=2", "alias_k=4"):
        series[technique] = [run(technique, c).speedup for c in CORES]
    emit("ablation_smp.txt",
         render_series("cores", CORES, series,
                       "Ablation: SMP speedup (total work / makespan) per "
                       "stack technique, 32 equal items", fmt="{:.2f}"))

    iso, copy, alias = (series["isomalloc"], series["stack_copy"],
                        series["memory_alias"])
    # Isomalloc scales; the single-address techniques are pinned near 1.
    assert iso[-1] > 6.0
    assert all(s < 1.05 for s in copy)
    assert all(s < 1.05 for s in alias)
    # At one core all techniques are within overhead of each other.
    assert abs(iso[0] - alias[0]) < 0.1
    # Our k-slot extension interpolates: ~min(k, cores) speedup.
    at4 = CORES.index(4)
    assert 1.8 < series["alias_k=2"][at4] < 2.2
    assert series["alias_k=4"][at4] > 3.5

    benchmark(lambda: run("isomalloc", 4))
