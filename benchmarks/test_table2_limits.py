"""Table 2: practical limits on flow counts, measured by live probing."""

from conftest import emit

from repro.bench.report import render_table
from repro.bench.tables import TABLE2_COLUMNS, table2_rows
from repro.flows import KernelThreadFlow, probe_limit
from repro.sim import Processor, get_platform

#: The paper's Table 2 (Linux, Sun, IBM SP, Alpha, Mac OS, IA-64).
PAPER_TABLE2 = {
    "Process":            ["8000", "25000", "100", "1000", "500", "50000+"],
    "Kernel Threads":     ["250", "3000", "2000", "90000+", "7000", "30000+"],
    "User-level Threads": ["90000+", "90000+", "15000", "90000+", "90000+",
                           "50000+"],
}


def test_table2_limits(benchmark):
    rows = table2_rows()
    headers = (["Flow of control", "Limiting Factor"]
               + [name for name, _ in TABLE2_COLUMNS])
    emit("table2_limits.txt",
         render_table(headers, rows,
                      "Table 2: approximate practical limits "
                      "(measured by creating flows until refusal)"))
    for row in rows:
        assert row[2:] == PAPER_TABLE2[row[0]], f"mismatch in {row[0]}"

    # Benchmark one representative probe (the Linux pthread limit).
    benchmark(lambda: probe_limit(
        KernelThreadFlow(Processor(0, get_platform("linux_x86"))),
        cap=1_000, chunk=64))
