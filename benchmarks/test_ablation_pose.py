"""Ablation: optimism control in the Time-Warp engine (mini-POSE).

The POSE paper the ICPP paper cites is about *grainsize and optimism
control*: unlimited speculation causes rollback storms; a bounded
speculation window trades a little laziness for far less wasted work.
This bench sweeps the throttle window on a straggler-heavy workload and
reports committed vs. speculative events.
"""

from conftest import emit

from repro.bench.report import render_table
from repro.core.pup import pup_register
from repro.pose import PoseEngine, Poser
from repro.sim import Cluster

N_EVENTS = 40


@pup_register
class _Sink(Poser):
    def __init__(self):
        self.seen = []

    def pup(self, p):
        self.seen = p.list_double(self.seen)

    def on_tok(self, data):
        self.seen.append(float(data))
        return []


def run(window):
    cl = Cluster(2)
    eng = PoseEngine(cl, throttle_window=window)
    eng.register("sink", _Sink(), 1)
    for vt in range(N_EVENTS, 0, -1):        # reverse order: max straggling
        eng.schedule("sink", "tok", float(vt), at=float(vt))
    stats = eng.run()
    assert eng.poser("sink").seen == [float(v) for v in range(1, N_EVENTS + 1)]
    return eng, stats


def test_ablation_pose_throttle(benchmark):
    rows = []
    results = {}
    for label, window in (("unlimited (Time Warp)", None),
                          ("window = 8", 8.0),
                          ("window = 2", 2.0),
                          ("window = 0 (conservative)", 0.0)):
        eng, stats = run(window)
        results[label] = stats
        rows.append([label, stats.events_processed, stats.rollbacks,
                     stats.events_rolled_back, stats.antimessages,
                     eng.deferrals])
    emit("ablation_pose.txt",
         render_table(["optimism", "processed", "rollbacks", "undone",
                       "antimsgs", "deferrals"], rows,
                      f"Ablation: optimism control, {N_EVENTS} events "
                      f"injected in reverse timestamp order"))

    wild = results["unlimited (Time Warp)"]
    tight = results["window = 0 (conservative)"]
    assert wild.rollbacks > 0
    assert tight.rollbacks <= wild.rollbacks
    assert tight.events_processed <= wild.events_processed
    # Every configuration commits the same N_EVENTS (checked inside run).

    benchmark(lambda: run(2.0))
