"""Ablation: blocking-call handling vs server throughput.

Paper Section 2.3: a user-level thread's blocking call suspends the whole
process unless the runtime intercepts it.  This bench runs the same
many-clients server workload under both modes and sweeps the client count:
naive blocking serializes the I/O (makespan ~ N * io), interception
overlaps it (makespan ~ io + N * compute).
"""

from conftest import emit

from repro.bench.report import render_series
from repro.core import CthScheduler, IsomallocArena, IsomallocStacks
from repro.sim import Cluster

IO_NS = 500_000.0
COMPUTE_NS = 50_000.0
CLIENT_COUNTS = [4, 8, 16, 32]


def run_server(io_mode, clients):
    cluster = Cluster(1)
    arena = IsomallocArena(cluster.platform.layout(), 1,
                           slot_bytes=64 * 1024)
    sched = CthScheduler(
        cluster[0],
        IsomallocStacks(cluster[0].space, cluster.platform, arena, 0,
                        stack_bytes=8 * 1024),
        io_mode=io_mode)
    done = []

    def handler(th, cid):
        yield ("io", IO_NS)
        th.charge(COMPUTE_NS)
        done.append(cid)

    for cid in range(clients):
        sched.create(lambda th, cid=cid: handler(th, cid))
    while len(done) < clients:
        progressed = sched.run() > 0
        progressed |= cluster.run() > 0
        assert progressed
    return cluster[0].now


def test_ablation_io_interception(benchmark):
    naive = [run_server("naive", n) / 1e6 for n in CLIENT_COUNTS]
    smart = [run_server("intercept", n) / 1e6 for n in CLIENT_COUNTS]
    emit("ablation_io.txt",
         render_series("clients", CLIENT_COUNTS,
                       {"naive_ms": naive, "intercept_ms": smart},
                       "Ablation: server makespan (ms) vs clients, naive "
                       "blocking vs intercepted blocking calls"))

    for i, n in enumerate(CLIENT_COUNTS):
        # Naive pays the I/O serially.
        assert naive[i] >= n * IO_NS / 1e6
        # Interception overlaps all I/O: one io + the serial compute.
        assert smart[i] < (IO_NS + n * COMPUTE_NS) / 1e6 * 1.5
        assert smart[i] < naive[i]
    # The advantage grows with concurrency.
    assert naive[-1] / smart[-1] > naive[0] / smart[0]

    benchmark(lambda: run_server("intercept", 8))
