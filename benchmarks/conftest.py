"""Shared helpers for the benchmark targets.

Every file in this directory regenerates one of the paper's tables or
figures: it prints the paper-style rows/series, writes them under
``results/``, asserts the DESIGN.md shape criteria, and benchmarks the
underlying primitive with pytest-benchmark.

Run them all with::

    pytest benchmarks/ --benchmark-only -s

Set ``REPRO_FULL=1`` for paper-scale runs (Figure 11's 200,000 threads).
"""

from __future__ import annotations

from repro.bench.report import save_report


def emit(name: str, text: str) -> None:
    """Print a report block and persist it under results/."""
    print("\n" + text)
    path = save_report(name, text)
    print(f"[saved {path}]")
