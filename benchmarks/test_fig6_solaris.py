"""Figure 6: context-switch time vs number of flows on solaris.

Four mechanisms (processes, pthreads, Cth user-level threads, AMPI
migratable threads) are created for real on a simulated 'solaris'
processor and driven through the yield-loop microbenchmark; series end
where the platform's limits refuse further creation.
"""

from _figures_common import run_context_switch_figure


def test_fig6_context_switch_solaris(benchmark):
    run_context_switch_figure(6, "solaris", benchmark)
