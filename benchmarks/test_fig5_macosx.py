"""Figure 5: context-switch time vs number of flows on mac_g5.

Four mechanisms (processes, pthreads, Cth user-level threads, AMPI
migratable threads) are created for real on a simulated 'mac_g5'
processor and driven through the yield-loop microbenchmark; series end
where the platform's limits refuse further creation.
"""

from _figures_common import run_context_switch_figure


def test_fig5_context_switch_macosx(benchmark):
    run_context_switch_figure(5, "mac_g5", benchmark)
