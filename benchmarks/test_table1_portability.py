"""Table 1: portability of migratable-thread techniques across platforms.

Regenerates the Yes/Maybe/No matrix by *deriving* each cell from the
platform's feature flags, and checks every cell against the paper.
"""

from conftest import emit

from repro.bench.report import render_table
from repro.bench.tables import TABLE1_COLUMNS, table1_rows

#: The paper's Table 1, cell for cell.
PAPER_TABLE1 = {
    "Stack Copy":   ["Yes", "Maybe", "Yes", "Maybe", "Yes", "Yes", "Yes",
                     "Maybe", "Yes"],
    "Isomalloc":    ["Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes",
                     "No", "Maybe"],
    "Memory Alias": ["Yes", "Yes", "Yes", "Yes", "Yes", "Yes", "Yes",
                     "Maybe", "Maybe"],
}


def test_table1_portability(benchmark):
    rows = benchmark(table1_rows)
    headers = ["Thread"] + [name for name, _ in TABLE1_COLUMNS]
    emit("table1_portability.txt",
         render_table(headers, rows,
                      "Table 1: portability of migratable thread "
                      "implementations (derived from feature flags)"))
    for row in rows:
        assert row[1:] == PAPER_TABLE1[row[0]], f"mismatch in {row[0]}"
